// The incremental engine contract (DESIGN.md §4g):
//
//  1. Incremental-vs-batch differential: N base records built in one shot
//     plus K records streamed in RANDOM order land on the same resolution
//     as a one-shot batch build over all N+K — identical clusterings and
//     match sets, term weights within 1e-10 — because both arms drain the
//     same prob ≡ 1 logistic ITER map to its unique positive fixed point.
//     Pinned serial and with an 8-thread pool (and the pooled run is
//     bitwise identical to the serial one).
//  2. Cancellation: every new entry point (BuildBatch, Ingest,
//     IngestExisting, Converge, RunIterDirty, RunProgressive) polls at
//     entry — k = 0 always cancels — and a cancelled converge is resumable:
//     Converge() recovers and the final weights match the uncancelled run.
//  3. The progressive scheduler with an unlimited budget emits exactly the
//     batch match set and clustering; a tripped budget yields a valid
//     partial snapshot, never an error.
//  4. DynamicBipartiteGraph is structure-for-structure the frozen
//     BipartiteGraph when fed the same dataset and pairs.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gter/common/exec_context.h"
#include "gter/common/metrics.h"
#include "gter/common/random.h"
#include "gter/common/thread_pool.h"
#include "gter/core/progressive.h"
#include "gter/core/resolver_state.h"
#include "gter/datagen/datagen.h"
#include "gter/graph/bipartite_graph.h"
#include "gter/graph/dynamic_bipartite.h"

namespace gter {
namespace {

// Small unpreprocessed world: streaming re-tokenizes raw text, so both
// arms must see full term sets (RemoveFrequentTerms is a batch-global
// operation; the serving layer applies it before the state is built).
Dataset MakeData() {
  return GenerateBenchmark(BenchmarkKind::kRestaurant, 0.12, 11).dataset;
}

// Rebuilds `src` with records re-added (re-tokenized) in `order`.
Dataset Reorder(const Dataset& src, const std::vector<RecordId>& order) {
  Dataset out(src.name(), src.num_sources());
  for (RecordId r : order) {
    const Record& rec = src.record(r);
    out.AddRecord(rec.source, rec.raw_text, rec.fields);
  }
  return out;
}

// Stream order: first `base` records in id order, the tail shuffled.
std::vector<RecordId> StreamOrder(size_t n, size_t base, uint64_t seed) {
  std::vector<RecordId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<RecordId>(i);
  std::vector<RecordId> tail(order.begin() + base, order.end());
  Rng rng(seed);
  rng.Shuffle(&tail);
  std::copy(tail.begin(), tail.end(), order.begin() + base);
  return order;
}

// Streamed arm: batch-build the first `base` stream positions, ingest the
// rest one by one through the replay path.
void RunStream(ResolverState* state, size_t base, const ExecContext& ctx) {
  ASSERT_TRUE(state->BuildBatch(ctx, base).ok());
  while (state->num_records() < state->dataset().size()) {
    auto ingest = state->IngestExisting(ctx);
    ASSERT_TRUE(ingest.ok()) << ingest.status();
  }
}

// Match set as canonical (a, b) pairs in ORIGINAL record ids; `to_orig`
// maps the state's record ids back (identity for the batch arm).
std::vector<std::pair<RecordId, RecordId>> MatchSet(
    const ResolverState& state, const std::vector<RecordId>& to_orig) {
  std::vector<std::pair<RecordId, RecordId>> out;
  for (PairId p = 0; p < state.pairs().size(); ++p) {
    if (!state.matches()[p]) continue;
    RecordId a = to_orig[state.pairs().pair(p).a];
    RecordId b = to_orig[state.pairs().pair(p).b];
    if (a > b) std::swap(a, b);
    out.emplace_back(a, b);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Asserts the two arms resolved identically: same vocabulary (as a set),
// per-term weights within `tol` (matched by term STRING — the arms intern
// in different orders), identical match sets and identical partitions in
// original record ids.
void ExpectArmsAgree(const ResolverState& batch, const ResolverState& stream,
                     const std::vector<RecordId>& order, double tol) {
  const Dataset& a = batch.dataset();
  const Dataset& b = stream.dataset();
  ASSERT_EQ(a.vocabulary().size(), b.vocabulary().size());
  ASSERT_EQ(batch.pairs().size(), stream.pairs().size());

  double max_drift = 0.0;
  for (TermId ta = 0; ta < a.vocabulary().size(); ++ta) {
    const TermId tb = b.vocabulary().Lookup(a.vocabulary().TermOf(ta));
    ASSERT_NE(tb, kInvalidTermId);
    max_drift = std::max(
        max_drift,
        std::fabs(batch.term_weights()[ta] - stream.term_weights()[tb]));
  }
  EXPECT_LE(max_drift, tol);

  std::vector<RecordId> identity(a.size());
  for (size_t i = 0; i < identity.size(); ++i) {
    identity[i] = static_cast<RecordId>(i);
  }
  EXPECT_EQ(MatchSet(batch, identity), MatchSet(stream, order));

  // Partition equivalence over every record pair, through the stream
  // permutation: pos[orig] = stream id.
  std::vector<RecordId> pos(order.size());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  ASSERT_EQ(batch.num_records(), stream.num_records());
  EXPECT_EQ(batch.num_clusters(), stream.num_clusters());
  const auto& ca = batch.cluster_of();
  const auto& cb = stream.cluster_of();
  for (RecordId r = 0; r < a.size(); ++r) {
    for (RecordId q = r + 1; q < a.size(); ++q) {
      EXPECT_EQ(ca[r] == ca[q], cb[pos[r]] == cb[pos[q]])
          << "records " << r << " vs " << q;
    }
  }
}

TEST(IncrementalDifferentialTest, StreamedRandomOrderMatchesBatchSerial) {
  Dataset data = MakeData();
  const size_t n = data.size();
  const size_t base = (n * 2) / 3;
  const std::vector<RecordId> order = StreamOrder(n, base, 99);

  ResolverState batch(&data);
  ASSERT_TRUE(batch.BuildBatch().ok());

  Dataset streamed_data = Reorder(data, order);
  ResolverState stream(&streamed_data);
  RunStream(&stream, base, DefaultExecContext());

  ExpectArmsAgree(batch, stream, order, 1e-10);
}

TEST(IncrementalDifferentialTest, StreamedMatchesBatchEightThreads) {
  Dataset data = MakeData();
  const size_t n = data.size();
  const size_t base = (n * 2) / 3;
  const std::vector<RecordId> order = StreamOrder(n, base, 1234);

  ThreadPool pool(8);
  const ExecContext ctx = ExecContext::WithPool(&pool);

  ResolverState batch(&data);
  ASSERT_TRUE(batch.BuildBatch(ctx).ok());

  Dataset streamed_data = Reorder(data, order);
  ResolverState stream(&streamed_data);
  RunStream(&stream, base, ctx);

  ExpectArmsAgree(batch, stream, order, 1e-10);

  // Thread-count determinism: the pooled streamed arm is bitwise the
  // serial streamed arm.
  Dataset serial_data = Reorder(data, order);
  ResolverState serial(&serial_data);
  RunStream(&serial, base, DefaultExecContext());
  ASSERT_EQ(serial.term_weights().size(), stream.term_weights().size());
  for (size_t t = 0; t < serial.term_weights().size(); ++t) {
    ASSERT_EQ(serial.term_weights()[t], stream.term_weights()[t]) << t;
  }
  EXPECT_EQ(serial.pair_scores(), stream.pair_scores());
  EXPECT_EQ(serial.cluster_of(), stream.cluster_of());
}

TEST(IncrementalDifferentialTest, SubsystemSolvePathMatchesBatch) {
  // Force the hub-coupled subsystem solve (and its post-solve parking) on
  // the small corpus by dropping the hub-degree bar and the trigger depth:
  // street-suffix terms here sit on dozens of pairs, so nearly every
  // ingest now routes through freeze → reduced solve → verify → park.
  // The differential contract must survive the solve's different
  // summation order, and the solve must stay bitwise thread-independent.
  ResolverStateOptions opts;
  opts.iter.subsystem_hub_degree = 8;
  opts.iter.subsystem_min_sweeps = 2;
  opts.iter.subsystem_delta = 1e-2;

  Dataset data = MakeData();
  const size_t n = data.size();
  const size_t base = (n * 2) / 3;
  const std::vector<RecordId> order = StreamOrder(n, base, 4242);

  ResolverState batch(&data);  // default options: plain batch fixed point
  ASSERT_TRUE(batch.BuildBatch().ok());

  MetricsRegistry metrics;
  ExecContext ctx;
  ctx.metrics = &metrics;
  Dataset streamed_data = Reorder(data, order);
  ResolverState stream(&streamed_data, opts);
  RunStream(&stream, base, ctx);
  // The forced thresholds must actually exercise the solve path —
  // otherwise this test silently degrades into StreamedRandomOrder.
  EXPECT_GT(metrics.Counter("iter/subsystem_solves"), 0u);

  ExpectArmsAgree(batch, stream, order, 1e-10);

  // Bitwise thread-independence with solves in play: the solve itself is
  // serial over sorted ids, and its surrounding refresh passes are
  // chunk-deterministic.
  ThreadPool pool(8);
  ExecContext pooled = ExecContext::WithPool(&pool);
  Dataset pooled_data = Reorder(data, order);
  ResolverState pooled_stream(&pooled_data, opts);
  RunStream(&pooled_stream, base, pooled);
  ASSERT_EQ(pooled_stream.term_weights().size(),
            stream.term_weights().size());
  for (size_t t = 0; t < stream.term_weights().size(); ++t) {
    ASSERT_EQ(pooled_stream.term_weights()[t], stream.term_weights()[t])
        << t;
  }
  EXPECT_EQ(pooled_stream.pair_scores(), stream.pair_scores());
  EXPECT_EQ(pooled_stream.cluster_of(), stream.cluster_of());
}

TEST(IncrementalDifferentialTest, ServingIngestPathMatchesBatch) {
  // The Ingest(source, raw_text) serving path: batch over N records vs
  // BuildBatch(N-5) plus five tokenizing ingests.
  Dataset data = MakeData();
  const size_t n = data.size();

  ResolverState batch(&data);
  ASSERT_TRUE(batch.BuildBatch().ok());

  std::vector<RecordId> identity(n);
  for (size_t i = 0; i < n; ++i) identity[i] = static_cast<RecordId>(i);
  Dataset prefix = Reorder(data, identity);
  // Drop the last five records, re-ingest them through the text path.
  Dataset head(data.name(), data.num_sources());
  for (size_t i = 0; i + 5 < n; ++i) {
    head.AddRecord(data.record(i).source, data.record(i).raw_text,
                   data.record(i).fields);
  }
  ResolverState stream(&head);
  ASSERT_TRUE(stream.BuildBatch().ok());
  for (size_t i = n - 5; i < n; ++i) {
    auto ingest =
        stream.Ingest(data.record(i).source, data.record(i).raw_text);
    ASSERT_TRUE(ingest.ok()) << ingest.status();
    EXPECT_EQ(ingest.value().record, static_cast<RecordId>(i));
    EXPECT_LT(ingest.value().cluster, stream.num_clusters());
    EXPECT_GE(ingest.value().cluster_size, 1u);
  }
  ExpectArmsAgree(batch, stream, identity, 1e-10);
}

TEST(IncrementalCancelTest, EveryEntryPointCancelsAtEntry) {
  Dataset data = MakeData();
  CancelToken token;
  ExecContext ctx;
  ctx.cancel = &token;

  {
    Dataset d = MakeData();
    ResolverState state(&d);
    token.Reset();
    token.CancelAfterPolls(0);
    EXPECT_EQ(state.BuildBatch(ctx).code(), StatusCode::kCancelled);
  }
  {
    Dataset d = MakeData();
    ResolverState state(&d);
    ASSERT_TRUE(state.BuildBatch().ok());
    token.Reset();
    token.CancelAfterPolls(0);
    const size_t before = d.size();
    auto r = state.Ingest(0, "cancelled ingest never lands", ctx);
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
    // Entry poll fires BEFORE the dataset mutates.
    EXPECT_EQ(d.size(), before);
    token.Reset();
    EXPECT_TRUE(state.Converge(ctx).ok());
  }
  {
    Dataset d = MakeData();
    ResolverState state(&d);
    token.Reset();
    token.CancelAfterPolls(0);
    EXPECT_EQ(state.IngestExisting(ctx).status().code(),
              StatusCode::kCancelled);
    token.Reset();
    token.CancelAfterPolls(0);
    EXPECT_EQ(state.Converge(ctx).code(), StatusCode::kCancelled);
  }
  {
    DynamicBipartiteGraph graph;
    graph.EnsureTerms(4);
    std::vector<double> x(4, 0.5);
    std::vector<double> s;
    token.Reset();
    token.CancelAfterPolls(0);
    EXPECT_EQ(RunIterDirty(graph, {0, 1}, {}, &x, &s, ctx).status().code(),
              StatusCode::kCancelled);
  }
  {
    PairSpace pairs = PairSpace::FromPairs({{0, 1}});
    std::vector<double> benefit{1.0};
    std::vector<double> prob{1.0};
    ProgressiveResult out;
    token.Reset();
    token.CancelAfterPolls(0);
    EXPECT_EQ(
        RunProgressive(2, pairs, benefit, prob, {}, &out, ctx).code(),
        StatusCode::kCancelled);
    // The anytime snapshot is still valid: singletons, nothing emitted.
    EXPECT_EQ(out.num_clusters, 2u);
    EXPECT_EQ(out.matched_count, 0u);
  }
}

TEST(IncrementalCancelTest, CancelledConvergeResumesToSameFixedPoint) {
  // Sweep cancel points through the BuildBatch converge; every cancelled
  // run must recover via Converge() to bitwise the uncancelled weights.
  Dataset reference_data = MakeData();
  ResolverState reference(&reference_data);
  ASSERT_TRUE(reference.BuildBatch().ok());

  for (uint64_t k = 0; k < 24; k += 3) {
    Dataset d = MakeData();
    ResolverState state(&d);
    CancelToken token;
    ExecContext ctx;
    ctx.cancel = &token;
    token.CancelAfterPolls(k);
    Status status = state.BuildBatch(ctx);
    if (!status.ok()) {
      ASSERT_EQ(status.code(), StatusCode::kCancelled) << "k=" << k;
      token.Reset();
      // BuildBatch resumes from the ingest horizon; a converge that was
      // cancelled mid-flight re-runs with a full frontier (the escape
      // hatch doubles as the resume path). Converge() alone also works
      // once the structural loop completed.
      ASSERT_TRUE(state.BuildBatch(ctx).ok()) << "k=" << k;
    }
    // A resume re-converges from a mid-flight state, so its floating-point
    // trajectory differs from the uncancelled run — the contract is the
    // 1e-10 drift bound (same fixed point), not bitwise equality.
    ASSERT_EQ(state.term_weights().size(), reference.term_weights().size());
    for (size_t t = 0; t < state.term_weights().size(); ++t) {
      ASSERT_NEAR(state.term_weights()[t], reference.term_weights()[t],
                  1e-10)
          << "k=" << k << " t=" << t;
    }
    ASSERT_EQ(state.cluster_of(), reference.cluster_of()) << "k=" << k;
  }
}

TEST(ProgressiveTest, UnlimitedBudgetEmitsBatchMatchSet) {
  Dataset data = MakeData();
  ResolverState state(&data);
  ASSERT_TRUE(state.BuildBatch().ok());

  ProgressiveOptions options;
  options.eta = state.options().eta;
  ProgressiveResult out;
  ASSERT_TRUE(RunProgressive(state.num_records(), state.pairs(),
                             state.pair_scores(), state.pair_probability(),
                             options, &out)
                  .ok());
  EXPECT_FALSE(out.budget_exhausted);
  EXPECT_EQ(out.pairs_considered, state.pairs().size());
  EXPECT_EQ(out.matches, state.matches());
  EXPECT_EQ(out.matched_count, state.matched_count());
  EXPECT_EQ(out.cluster_of, state.cluster_of());
  EXPECT_EQ(out.num_clusters, state.num_clusters());
}

TEST(ProgressiveTest, TrippedBudgetYieldsValidPartialSnapshot) {
  Dataset data = MakeData();
  ResolverState state(&data);
  ASSERT_TRUE(state.BuildBatch().ok());

  ProgressiveOptions options;
  options.eta = state.options().eta;
  options.budget_seconds = 1e-12;  // trips at the first poll
  options.poll_stride = 1;
  ProgressiveResult out;
  ASSERT_TRUE(RunProgressive(state.num_records(), state.pairs(),
                             state.pair_scores(), state.pair_probability(),
                             options, &out)
                  .ok());
  EXPECT_TRUE(out.budget_exhausted);
  EXPECT_LT(out.pairs_considered, state.pairs().size());
  EXPECT_EQ(out.cluster_of.size(), state.num_records());
  // Whatever was emitted is a prefix of the benefit order: matched pairs
  // all carry probability ≥ eta.
  for (PairId p = 0; p < state.pairs().size(); ++p) {
    if (out.matches[p]) {
      EXPECT_GE(state.pair_probability()[p], options.eta);
    }
  }
}

TEST(DynamicBipartiteTest, MirrorsFrozenGraphStructure) {
  Dataset data = MakeData();
  PairSpace pairs = PairSpace::Build(data);
  for (PtMode mode : {PtMode::kPaper, PtMode::kConnectedPairs}) {
    BipartiteGraph frozen = BipartiteGraph::Build(data, pairs, mode);
    DynamicBipartiteGraph dynamic(mode);
    dynamic.EnsureTerms(data.vocabulary().size());
    for (const Record& rec : data.records()) {
      dynamic.AddRecordTerms(rec.terms);
    }
    for (PairId p = 0; p < pairs.size(); ++p) {
      auto terms = frozen.TermsOfPair(p);
      ASSERT_EQ(dynamic.AddPair(terms), p);
    }
    ASSERT_EQ(dynamic.num_terms(), frozen.num_terms());
    ASSERT_EQ(dynamic.num_pairs(), frozen.num_pairs());
    ASSERT_EQ(dynamic.num_edges(), frozen.num_edges());
    for (TermId t = 0; t < frozen.num_terms(); ++t) {
      ASSERT_EQ(dynamic.Nt(t), frozen.Nt(t)) << t;
      ASSERT_EQ(dynamic.Pt(t), frozen.Pt(t)) << t;
      auto a = frozen.PairsOfTerm(t);
      auto b = dynamic.PairsOfTerm(t);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << t;
    }
    for (PairId p = 0; p < frozen.num_pairs(); ++p) {
      auto a = frozen.TermsOfPair(p);
      auto b = dynamic.TermsOfPair(p);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << p;
    }
  }
}

TEST(ResolverStateTest, CountersAndVersionAdvance) {
  Dataset data = MakeData();
  ResolverState state(&data);
  ASSERT_TRUE(state.BuildBatch().ok());
  EXPECT_EQ(state.records_ingested(), 0u);  // batch build is not an ingest
  EXPECT_EQ(state.dirty_reiter_runs(), 1u);
  EXPECT_EQ(state.full_resweeps(), 1u);  // all-dirty → escape hatch fires
  EXPECT_GT(state.last_converge_sweeps(), 0u);
  EXPECT_FALSE(state.has_pending_dirty());
  const uint64_t v = state.version();

  auto ingest = state.Ingest(0, "kabul afghan cuisine west hollywood");
  ASSERT_TRUE(ingest.ok());
  EXPECT_EQ(state.records_ingested(), 1u);
  EXPECT_EQ(state.dirty_reiter_runs(), 2u);
  EXPECT_GT(state.version(), v);
  EXPECT_EQ(state.num_records(), data.size());
  EXPECT_EQ(state.cluster_of().size(), data.size());
}

}  // namespace
}  // namespace gter
