// Partition-validity property suite over every registered clustering
// endgame (DESIGN.md §4f). Each clusterer runs over seeded random
// similarity graphs across a density sweep and must uphold the interface
// contract:
//   * the output is a true partition — one dense label per record, labels
//     in first-occurrence (smallest-member) order, no empty cluster;
//   * identical problems yield identical partitions (determinism);
//   * the clean-clean endgames uphold the bipartite contract — no two
//     records of the same source share an entity, every record has at
//     most one partner (entities of size ≤ 2).

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gter/common/random.h"
#include "gter/core/clusterer.h"
#include "gter/er/pair_space.h"

namespace gter {
namespace {

/// A seeded random similarity graph: each of the n·(n−1)/2 pairs joins the
/// candidate space with probability `density`; weights are uniform in
/// [0, 1] and sources alternate between two datasets (record parity), so
/// roughly a quarter of edges straddle the bipartite cut at any η.
struct RandomWorld {
  PairSpace pairs;
  std::vector<double> prob;
  std::vector<uint32_t> sources;

  RandomWorld(size_t n, double density, uint64_t seed) {
    Rng rng(seed);
    std::vector<RecordPair> edges;
    for (uint32_t a = 0; a < n; ++a) {
      for (uint32_t b = a + 1; b < n; ++b) {
        if (rng.UniformDouble() < density) edges.push_back({a, b});
      }
    }
    pairs = PairSpace::FromPairs(std::move(edges));
    prob.resize(pairs.size());
    for (double& p : prob) p = rng.UniformDouble();
    sources.resize(n);
    for (uint32_t r = 0; r < n; ++r) sources[r] = r % 2;
  }

  ClusterProblem Problem(size_t n, double eta,
                         bool with_sources) const {
    ClusterProblem problem;
    problem.num_records = n;
    problem.pairs = &pairs;
    problem.pair_probability = &prob;
    problem.eta = eta;
    if (with_sources) problem.source_of = &sources;
    return problem;
  }
};

bool IsMatchingKind(ClustererKind kind) {
  switch (kind) {
    case ClustererKind::kUniqueMapping:
    case ClustererKind::kRowAssignment:
    case ClustererKind::kColumnAssignment:
    case ClustererKind::kBestMatch:
    case ClustererKind::kReciprocalMatch:
    case ClustererKind::kExactMatch:
      return true;
    default:
      return false;
  }
}

/// The partition contract: labels dense in [0, num_clusters), assigned in
/// first-occurrence order (record 0 is always label 0, and label k+1 first
/// appears after label k). Density in that order implies no empty cluster.
void ExpectValidPartition(const Clustering& clustering, size_t n) {
  ASSERT_EQ(clustering.cluster_of.size(), n);
  uint32_t seen = 0;
  for (size_t r = 0; r < n; ++r) {
    const uint32_t label = clustering.cluster_of[r];
    ASSERT_LE(label, seen) << "label order broken at record " << r;
    if (label == seen) ++seen;
  }
  EXPECT_EQ(clustering.num_clusters, seen);
}

// (records, density, seed) — densities from near-empty to near-complete.
class ClustererProperty
    : public ::testing::TestWithParam<std::tuple<size_t, double, uint64_t>> {
};

TEST_P(ClustererProperty, EveryEndgameYieldsAValidDeterministicPartition) {
  auto [n, density, seed] = GetParam();
  RandomWorld world(n, density, seed);
  // η = 0.5 keeps about half the edges eligible, so the matching sweeps
  // and the merge loops all do real work.
  const double eta = 0.5;

  for (ClustererKind kind : AllClustererKinds()) {
    SCOPED_TRACE(ClustererKindName(kind));
    std::unique_ptr<Clusterer> clusterer = MakeClusterer(kind);
    ASSERT_EQ(clusterer->name(), ClustererKindName(kind));
    for (bool with_sources : {false, true}) {
      SCOPED_TRACE(with_sources ? "two sources" : "single source");
      ClusterProblem problem = world.Problem(n, eta, with_sources);
      Clustering first = clusterer->Cluster(problem).value();
      ExpectValidPartition(first, n);

      // Determinism: the same problem re-clusters identically.
      Clustering second = clusterer->Cluster(problem).value();
      EXPECT_EQ(first.cluster_of, second.cluster_of);
      EXPECT_EQ(first.num_clusters, second.num_clusters);
    }
  }
}

TEST_P(ClustererProperty, CleanCleanEndgamesUpholdTheBipartiteContract) {
  auto [n, density, seed] = GetParam();
  RandomWorld world(n, density, seed);
  ClusterProblem problem = world.Problem(n, 0.5, /*with_sources=*/true);

  for (ClustererKind kind : AllClustererKinds()) {
    if (!IsMatchingKind(kind)) continue;
    SCOPED_TRACE(ClustererKindName(kind));
    Clustering clustering = MakeClusterer(kind)->Cluster(problem).value();

    std::vector<std::vector<RecordId>> members(clustering.num_clusters);
    for (RecordId r = 0; r < n; ++r) {
      members[clustering.cluster_of[r]].push_back(r);
    }
    for (const std::vector<RecordId>& entity : members) {
      // ≤ 1 partner per record: entities never exceed two records.
      ASSERT_LE(entity.size(), 2u);
      if (entity.size() == 2) {
        // No two same-source records in one entity.
        EXPECT_NE(world.sources[entity[0]], world.sources[entity[1]])
            << "records " << entity[0] << " and " << entity[1];
      }
    }
  }
}

TEST_P(ClustererProperty, MatchedPairsAreEligibleEdges) {
  auto [n, density, seed] = GetParam();
  RandomWorld world(n, density, seed);
  const double eta = 0.5;
  ClusterProblem problem = world.Problem(n, eta, /*with_sources=*/true);

  // Every 2-record entity a matching endgame forms must be backed by a
  // candidate edge at or above the threshold — matchers never invent pairs.
  std::set<std::pair<RecordId, RecordId>> eligible;
  for (PairId p = 0; p < world.pairs.size(); ++p) {
    if (world.prob[p] < eta) continue;
    const RecordPair& rp = world.pairs.pair(p);
    if (world.sources[rp.a] == world.sources[rp.b]) continue;
    eligible.insert({rp.a, rp.b});
  }
  for (ClustererKind kind : AllClustererKinds()) {
    if (!IsMatchingKind(kind)) continue;
    SCOPED_TRACE(ClustererKindName(kind));
    Clustering clustering = MakeClusterer(kind)->Cluster(problem).value();
    std::vector<std::vector<RecordId>> members(clustering.num_clusters);
    for (RecordId r = 0; r < n; ++r) {
      members[clustering.cluster_of[r]].push_back(r);
    }
    for (const std::vector<RecordId>& entity : members) {
      if (entity.size() != 2) continue;
      EXPECT_TRUE(eligible.count({entity[0], entity[1]}))
          << "entity {" << entity[0] << ", " << entity[1]
          << "} has no eligible edge";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensitySweep, ClustererProperty,
    ::testing::Combine(::testing::Values<size_t>(17, 40, 90),
                       ::testing::Values(0.02, 0.15, 0.5, 0.9),
                       ::testing::Values<uint64_t>(1, 2, 3)),
    [](const auto& info) {
      std::string name = "n";
      name += std::to_string(std::get<0>(info.param));
      name += "_d";
      name += std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
      name += "_s";
      name += std::to_string(std::get<2>(info.param));
      return name;
    });

TEST(ClustererEdgeCases, EmptyGraphYieldsAllSingletons) {
  PairSpace pairs = PairSpace::FromPairs({});
  std::vector<double> prob;
  ClusterProblem problem;
  problem.num_records = 5;
  problem.pairs = &pairs;
  problem.pair_probability = &prob;
  for (ClustererKind kind : AllClustererKinds()) {
    SCOPED_TRACE(ClustererKindName(kind));
    Clustering clustering = MakeClusterer(kind)->Cluster(problem).value();
    EXPECT_EQ(clustering.num_clusters, 5u);
    EXPECT_EQ(clustering.cluster_of, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  }
}

TEST(ClustererEdgeCases, ZeroRecordsYieldZeroClusters) {
  PairSpace pairs = PairSpace::FromPairs({});
  std::vector<double> prob;
  ClusterProblem problem;
  problem.num_records = 0;
  problem.pairs = &pairs;
  problem.pair_probability = &prob;
  for (ClustererKind kind : AllClustererKinds()) {
    SCOPED_TRACE(ClustererKindName(kind));
    Clustering clustering = MakeClusterer(kind)->Cluster(problem).value();
    EXPECT_EQ(clustering.num_clusters, 0u);
    EXPECT_TRUE(clustering.cluster_of.empty());
  }
}

TEST(ClustererEdgeCases, HierarchicalThresholdSweepIsMonotonic) {
  // Lowering the merge threshold only ever merges more: the number of
  // clusters is non-increasing as the knob loosens.
  RandomWorld world(60, 0.3, 77);
  size_t previous = 0;
  bool first = true;
  for (double threshold : {1.01, 0.9, 0.7, 0.5, 0.3, 0.1, 0.0}) {
    ClustererOptions options;
    options.merge_threshold = threshold;
    Clustering clustering =
        MakeClusterer(ClustererKind::kHierarchical, options)
            ->Cluster(world.Problem(60, 0.5, false))
            .value();
    if (!first) {
      EXPECT_LE(clustering.num_clusters, previous)
          << "threshold " << threshold;
    }
    previous = clustering.num_clusters;
    first = false;
  }
  // Above any edge weight nothing merges; the partition is all singletons.
  ClustererOptions options;
  options.merge_threshold = 1.01;
  Clustering top = MakeClusterer(ClustererKind::kHierarchical, options)
                       ->Cluster(world.Problem(60, 0.5, false))
                       .value();
  EXPECT_EQ(top.num_clusters, 60u);
}

TEST(ClustererRegistry, NamesRoundTripAndUnknownNamesAreRejected) {
  for (ClustererKind kind : AllClustererKinds()) {
    Result<ClustererKind> parsed = ParseClustererKind(ClustererKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  Result<ClustererKind> bad = ParseClustererKind("kmeans");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gter
