// Property tests for Myers' bit-parallel Levenshtein vs the classic row
// DP. The two must return IDENTICAL distances on every input — Myers
// computes the same dynamic program, 64 cells per machine word — so the
// whole contract is exact equality: 10k seeded random byte-string pairs
// (lengths 0..200, spanning the single-word / blocked switch at 64, with
// bytes above 127), plus crafted edge cases and the dispatch wiring.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "gter/common/cpu.h"
#include "gter/common/random.h"
#include "gter/text/string_metrics.h"

namespace gter {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len = rng->NextBounded(max_len + 1);
  std::string s(len, '\0');
  // Full byte range: exercises the unsigned-char Peq indexing (a signed
  // char would index negatively for bytes above 127).
  for (char& c : s) c = static_cast<char>(rng->NextBounded(256));
  return s;
}

/// A mutated copy of `base` — distances between related strings exercise
/// different DP bands than independent random pairs.
std::string Mutate(std::string s, Rng* rng) {
  const size_t edits = rng->NextBounded(8);
  for (size_t e = 0; e < edits && !s.empty(); ++e) {
    const size_t pos = rng->NextBounded(s.size());
    switch (rng->NextBounded(3)) {
      case 0:  // substitute
        s[pos] = static_cast<char>(rng->NextBounded(256));
        break;
      case 1:  // delete
        s.erase(pos, 1);
        break;
      default:  // insert
        s.insert(pos, 1, static_cast<char>(rng->NextBounded(256)));
        break;
    }
  }
  return s;
}

TEST(LevenshteinMyers, MatchesDpOnRandomPairs) {
  Rng rng(20180405);
  for (int i = 0; i < 5000; ++i) {
    // Lengths up to 200 cover 1-, 2-, and 4-block patterns.
    const std::string a = RandomBytes(&rng, 200);
    const std::string b = RandomBytes(&rng, 200);
    ASSERT_EQ(LevenshteinDistanceMyers(a, b), LevenshteinDistanceDp(a, b))
        << "random pair " << i << " |a|=" << a.size() << " |b|=" << b.size();
  }
}

TEST(LevenshteinMyers, MatchesDpOnMutatedPairs) {
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    const std::string a = RandomBytes(&rng, 150);
    const std::string b = Mutate(a, &rng);
    ASSERT_EQ(LevenshteinDistanceMyers(a, b), LevenshteinDistanceDp(a, b))
        << "mutated pair " << i;
  }
}

TEST(LevenshteinMyers, EmptyStrings) {
  EXPECT_EQ(LevenshteinDistanceMyers("", ""), 0u);
  EXPECT_EQ(LevenshteinDistanceMyers("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistanceMyers("abc", ""), 3u);
  const std::string long_one(300, 'x');
  EXPECT_EQ(LevenshteinDistanceMyers(long_one, ""), 300u);
}

TEST(LevenshteinMyers, EqualStrings) {
  EXPECT_EQ(LevenshteinDistanceMyers("a", "a"), 0u);
  const std::string s = "arnie mortons of chicago 435 s la cienega blvd";
  EXPECT_EQ(LevenshteinDistanceMyers(s, s), 0u);
  const std::string block_edge(64, 'q');
  EXPECT_EQ(LevenshteinDistanceMyers(block_edge, block_edge), 0u);
  const std::string multi_block(200, 'q');
  EXPECT_EQ(LevenshteinDistanceMyers(multi_block, multi_block), 0u);
}

TEST(LevenshteinMyers, KnownDistances) {
  EXPECT_EQ(LevenshteinDistanceMyers("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistanceMyers("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistanceMyers("abc", "abcd"), 1u);  // prefix
  EXPECT_EQ(LevenshteinDistanceMyers("abcd", "bcd"), 1u);  // suffix
}

TEST(LevenshteinMyers, Utf8BytesCountAsBytes) {
  // Both implementations are byte-level: "é" (2 bytes in UTF-8) vs "e"
  // costs 2 (one substitute + one delete), identically in both.
  const std::string accented = "caf\xc3\xa9";
  const std::string plain = "cafe";
  EXPECT_EQ(LevenshteinDistanceMyers(accented, plain),
            LevenshteinDistanceDp(accented, plain));
  EXPECT_EQ(LevenshteinDistanceMyers(accented, plain), 2u);
}

TEST(LevenshteinMyers, BlockBoundaryLengths) {
  // Pattern lengths straddling the 64-byte word boundary and multiples.
  Rng rng(3);
  for (size_t len : {63u, 64u, 65u, 127u, 128u, 129u, 192u}) {
    std::string a(len, 'a');
    for (char& c : a) c = static_cast<char>('a' + rng.NextBounded(4));
    const std::string b = Mutate(a, &rng);
    ASSERT_EQ(LevenshteinDistanceMyers(a, b), LevenshteinDistanceDp(a, b))
        << "len " << len;
  }
}

TEST(LevenshteinDispatch, ScalarLevelPinsTheDp) {
  // Under --simd=scalar the public entry point must run the DP; above it,
  // Myers. Distances agree either way, so the observable contract is just
  // that both dispatch targets return the right answer.
  ScopedSimdLevel scalar(SimdLevel::kScalar);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
}

TEST(LevenshteinDispatch, DispatchedDistanceMatchesBothImplementations) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::string a = RandomBytes(&rng, 100);
    const std::string b = RandomBytes(&rng, 100);
    const size_t expected = LevenshteinDistanceDp(a, b);
    {
      ScopedSimdLevel scalar(SimdLevel::kScalar);
      ASSERT_EQ(LevenshteinDistance(a, b), expected);
    }
    ASSERT_EQ(LevenshteinDistance(a, b), expected);
  }
}

}  // namespace
}  // namespace gter
