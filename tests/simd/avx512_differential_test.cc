// AVX-512-vs-scalar differentials for the 512-bit kernel tier (gather
// reduces ≤1e-12, packed GEMM ≤1e-12, masked products bitwise, the 8-lane
// batched Levenshtein exact, the mask-parallel Jaro-Winkler bitwise), plus
// the fused-vs-staged pipeline differentials pinning IterOptions::
// fuse_sweeps and CliqueRankOptions::fuse_passes bit-identically to their
// staged twins at every thread count. AVX-512-dependent cases GTEST_SKIP on
// machines or builds without the tier (the batch entry points and the
// fusion flags still run everywhere — they dispatch to whatever the host
// has), so the suite passes on any x86-64 or none.

#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gter/common/cpu.h"
#include "gter/common/random.h"
#include "gter/common/simd_ops.h"
#include "gter/common/thread_pool.h"
#include "gter/core/cliquerank.h"
#include "gter/core/iter.h"
#include "gter/er/dataset.h"
#include "gter/er/pair_space.h"
#include "gter/graph/bipartite_graph.h"
#include "gter/graph/record_graph.h"
#include "gter/matrix/csr_matrix.h"
#include "gter/matrix/gemm.h"
#include "gter/matrix/masked_multiply.h"
#include "gter/text/string_metrics.h"

namespace gter {
namespace {

bool Avx512Available() { return DetectSimdLevel() >= SimdLevel::kAvx512; }

// ---------------------------------------------------------------------------
// Gather-reduce primitives at the avx512 tier.

class Avx512IndexedSumDifferential
    : public ::testing::TestWithParam<size_t> {};

TEST_P(Avx512IndexedSumDifferential, MatchesScalarWithinTolerance) {
  if (!Avx512Available()) GTEST_SKIP() << "no AVX-512";
  const size_t n = GetParam();
  Rng rng(n * 13 + 3);
  std::vector<double> values(1000);
  std::vector<double> weights(1000);
  for (double& v : values) v = rng.UniformDouble(-1.0, 1.0);
  for (double& w : weights) w = rng.UniformDouble(0.0, 1.0);
  std::vector<uint32_t> idx(n);
  for (uint32_t& i : idx) i = static_cast<uint32_t>(rng.NextBounded(1000));

  const IndexedSumFn simd_sum = ResolveIndexedSum(SimdLevel::kAvx512);
  const IndexedWeightedSumFn simd_wsum =
      ResolveIndexedWeightedSum(SimdLevel::kAvx512);
  ASSERT_NE(simd_sum, &IndexedSumScalar);
  ASSERT_NE(simd_sum, ResolveIndexedSum(SimdLevel::kAvx2));

  const double ref = IndexedSumScalar(values.data(), idx.data(), n);
  const double got = simd_sum(values.data(), idx.data(), n);
  EXPECT_NEAR(got, ref, 1e-12 * std::max(1.0, std::fabs(ref))) << "n=" << n;

  const double wref =
      IndexedWeightedSumScalar(weights.data(), values.data(), idx.data(), n);
  const double wgot = simd_wsum(weights.data(), values.data(), idx.data(), n);
  EXPECT_NEAR(wgot, wref, 1e-12 * std::max(1.0, std::fabs(wref))) << "n=" << n;
}

// Sizes cover the scalar tail (<8), one vector, the unroll-by-16 main
// loop, the 8-wide remainder step, and every remainder class mod 8.
INSTANTIATE_TEST_SUITE_P(Sizes, Avx512IndexedSumDifferential,
                         ::testing::Values(0, 1, 7, 8, 9, 15, 16, 17, 23, 24,
                                           31, 32, 33, 100, 1000));

// ---------------------------------------------------------------------------
// Packed GEMM at the avx512 tier.

DenseMatrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  DenseMatrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng->UniformDouble(-1.0, 1.0);
  }
  return m;
}

void ExpectGemmClose(const DenseMatrix& ref, const DenseMatrix& got) {
  ASSERT_EQ(ref.rows(), got.rows());
  ASSERT_EQ(ref.cols(), got.cols());
  for (size_t r = 0; r < ref.rows(); ++r) {
    for (size_t c = 0; c < ref.cols(); ++c) {
      const double tolerance = 1e-12 * std::max(1.0, std::fabs(ref(r, c)));
      ASSERT_NEAR(got(r, c), ref(r, c), tolerance)
          << "at (" << r << ", " << c << ")";
    }
  }
}

// (m, k, n) shapes straddling every avx512 packing edge: the 8-row
// micropanel, the 16-column (two-zmm) panel, the 64-row MC block, and the
// 256-deep KC slab.
class Avx512GemmDifferential
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(Avx512GemmDifferential, PackedMatchesScalarWithinTolerance) {
  if (!Avx512Available()) GTEST_SKIP() << "no AVX-512";
  auto [m, k, n] = GetParam();
  Rng rng(m * 257 + k * 31 + n);
  DenseMatrix a = RandomMatrix(m, k, &rng);
  DenseMatrix b = RandomMatrix(k, n, &rng);

  DenseMatrix ref, got;
  {
    ScopedSimdLevel scalar(SimdLevel::kScalar);
    Gemm(a, b, &ref);
  }
  {
    ScopedSimdLevel avx512(SimdLevel::kAvx512);
    Gemm(a, b, &got);
  }
  ExpectGemmClose(ref, got);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Avx512GemmDifferential,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(7, 9, 15),
                      std::make_tuple(8, 16, 16), std::make_tuple(9, 17, 33),
                      std::make_tuple(63, 64, 65), std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 257, 17), std::make_tuple(72, 31, 80),
                      std::make_tuple(130, 300, 66)));

TEST(Avx512Gemm, SparseRowsSurviveThePanelSkip) {
  if (!Avx512Available()) GTEST_SKIP() << "no AVX-512";
  // Rows 0-7 all zero, row 8 dense: the all-zero 8-row micropanel must be
  // skipped without corrupting C, and the mixed panel must still compute.
  Rng rng(6);
  DenseMatrix a(17, 300, 0.0);
  for (size_t c = 0; c < 300; ++c) a(8, c) = rng.UniformDouble(-1.0, 1.0);
  for (size_t c = 0; c < 300; c += 3) a(16, c) = rng.UniformDouble(-1.0, 1.0);
  DenseMatrix b = RandomMatrix(300, 35, &rng);
  DenseMatrix ref, got;
  {
    ScopedSimdLevel scalar(SimdLevel::kScalar);
    Gemm(a, b, &ref);
  }
  {
    ScopedSimdLevel avx512(SimdLevel::kAvx512);
    Gemm(a, b, &got);
  }
  ExpectGemmClose(ref, got);
  for (size_t c = 0; c < 35; ++c) ASSERT_EQ(got(0, c), 0.0);
}

TEST(Avx512Gemm, PackedKernelIsThreadCountInvariant) {
  if (!Avx512Available()) GTEST_SKIP() << "no AVX-512";
  Rng rng(10);
  DenseMatrix a = RandomMatrix(150, 90, &rng);
  DenseMatrix b = RandomMatrix(90, 70, &rng);
  ScopedSimdLevel avx512(SimdLevel::kAvx512);
  DenseMatrix serial, parallel;
  Gemm(a, b, &serial);
  ThreadPool pool(4);
  Gemm(a, b, &parallel, ExecContext::WithPool(&pool));
  EXPECT_EQ(serial.MaxAbsDiff(parallel), 0.0);
}

// ---------------------------------------------------------------------------
// Masked-product kernels: the bitwise contract extends to the avx512 tier.

CsrMatrix ErdosRenyiCsr(size_t n, size_t edges_per_node, uint64_t seed) {
  Rng rng(seed);
  std::vector<CsrMatrix::Triplet> triplets;
  for (uint32_t i = 0; i < n; ++i) {
    for (size_t e = 0; e < edges_per_node; ++e) {
      uint32_t j = static_cast<uint32_t>(rng.NextBounded(n));
      if (j == i) continue;
      triplets.push_back({i, j, rng.OpenUniformDouble()});
      triplets.push_back({j, i, rng.OpenUniformDouble()});
    }
  }
  return CsrMatrix::FromTriplets(n, n, triplets);
}

class Avx512MaskedProductDifferential
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Avx512MaskedProductDifferential, MatchesScalarBitwise) {
  if (!Avx512Available()) GTEST_SKIP() << "no AVX-512";
  const uint64_t seed = GetParam();
  const size_t n = 400;
  CsrMatrix trans = ErdosRenyiCsr(n, 6, seed);
  trans.NormalizeRows();
  CsrMatrix pattern = trans;  // same structure
  Rng rng(seed + 99);
  std::vector<double> prev(pattern.nnz());
  for (double& v : prev) v = rng.OpenUniformDouble();
  std::vector<double> dense(n * n, 0.0);
  ScatterToDense(pattern, prev.data(), dense.data());

  std::vector<double> ref_dense(pattern.nnz()), got_dense(pattern.nnz());
  std::vector<double> ref_csr(pattern.nnz()), got_csr(pattern.nnz());
  {
    ScopedSimdLevel scalar(SimdLevel::kScalar);
    ComputeMaskedProduct(trans, dense.data(), pattern, ref_dense.data());
    ComputeMaskedProductCsr(trans, prev.data(), pattern, ref_csr.data());
  }
  {
    ScopedSimdLevel avx512(SimdLevel::kAvx512);
    ComputeMaskedProduct(trans, dense.data(), pattern, got_dense.data());
    ComputeMaskedProductCsr(trans, prev.data(), pattern, got_csr.data());
  }
  // Gather-modify-scatter preserves the scalar per-entry summation order
  // exactly (no FMA, -ffp-contract=off on the TU), so equality is exact.
  for (size_t e = 0; e < pattern.nnz(); ++e) {
    ASSERT_EQ(got_dense[e], ref_dense[e]) << "dense kernel entry " << e;
    ASSERT_EQ(got_csr[e], ref_csr[e]) << "csr kernel entry " << e;
    ASSERT_EQ(got_csr[e], got_dense[e]) << "cross-kernel entry " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Avx512MaskedProductDifferential,
                         ::testing::Values(21, 22, 23));

// The fused-accumulate overload must equal "staged kernel, then a separate
// accum += out sweep" bit for bit at every tier the host has — the fusion
// only moves the elementwise add into the row readout.
TEST(FusedAccumMaskedCsr, MatchesStagedAccumulateBitwiseAtEveryLevel) {
  const size_t n = 300;
  CsrMatrix trans = ErdosRenyiCsr(n, 5, 31);
  trans.NormalizeRows();
  CsrMatrix pattern = trans;
  Rng rng(131);
  std::vector<double> prev(pattern.nnz());
  for (double& v : prev) v = rng.OpenUniformDouble();
  std::vector<double> accum_init(pattern.nnz());
  for (double& v : accum_init) v = rng.UniformDouble(-1.0, 1.0);

  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (DetectSimdLevel() >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  if (DetectSimdLevel() >= SimdLevel::kAvx512) {
    levels.push_back(SimdLevel::kAvx512);
  }
  for (SimdLevel level : levels) {
    ScopedSimdLevel scoped(level);
    std::vector<double> staged_out(pattern.nnz(), 0.0);
    std::vector<double> staged_accum = accum_init;
    ASSERT_TRUE(ComputeMaskedProductCsr(trans, prev.data(), pattern,
                                        staged_out.data())
                    .ok());
    for (size_t e = 0; e < pattern.nnz(); ++e) staged_accum[e] += staged_out[e];

    std::vector<double> fused_out(pattern.nnz(), 0.0);
    std::vector<double> fused_accum = accum_init;
    ASSERT_TRUE(ComputeMaskedProductCsr(trans, prev.data(), pattern,
                                        fused_out.data(), fused_accum.data())
                    .ok());
    for (size_t e = 0; e < pattern.nnz(); ++e) {
      ASSERT_EQ(fused_out[e], staged_out[e])
          << "out entry " << e << " level " << SimdLevelName(level);
      ASSERT_EQ(fused_accum[e], staged_accum[e])
          << "accum entry " << e << " level " << SimdLevelName(level);
    }
  }
}

// ---------------------------------------------------------------------------
// Batched Levenshtein: the 8-lane Myers kernel computes the exact DP.

std::string RandomBytes(size_t len, Rng* rng, bool full_range) {
  std::string s(len, '\0');
  for (char& c : s) {
    // Half the corpus from a 4-letter alphabet (dense matches, carries
    // through every lane), half from the full byte range including NUL
    // (the peq table must index all 256 values).
    c = full_range ? static_cast<char>(rng->NextBounded(256))
                   : static_cast<char>('a' + rng->NextBounded(4));
  }
  return s;
}

TEST(LevenshteinBatch, MatchesRowDpOverRandomizedByteStrings) {
  // Runs at the detected level: on an avx512 host the |pattern| ≤ 64 cases
  // go through the 8-lane kernel, everything else through the per-pair
  // cores — all must equal the classic DP exactly. Pattern lengths straddle
  // the 64-char single-word boundary; batch sizes straddle the 8-lane group
  // width; text lengths straddle both.
  Rng rng(77);
  for (size_t pattern_len : {size_t{0}, size_t{1}, size_t{5}, size_t{63},
                             size_t{64}, size_t{65}, size_t{100}}) {
    for (size_t batch_size : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                              size_t{9}, size_t{20}}) {
      const std::string pattern =
          RandomBytes(pattern_len, &rng, pattern_len % 2 == 0);
      std::vector<std::string> texts(batch_size);
      for (size_t j = 0; j < batch_size; ++j) {
        texts[j] = RandomBytes(rng.NextBounded(150), &rng, j % 2 == 0);
      }
      std::vector<size_t> got;
      LevenshteinDistanceBatch(pattern, texts, &got);
      ASSERT_EQ(got.size(), batch_size);
      for (size_t j = 0; j < batch_size; ++j) {
        ASSERT_EQ(got[j], LevenshteinDistanceDp(pattern, texts[j]))
            << "|pattern|=" << pattern_len << " batch=" << batch_size
            << " candidate " << j << " |text|=" << texts[j].size();
      }
    }
  }
}

TEST(LevenshteinBatch, Avx512LaneKernelMatchesScalarDispatch) {
  if (!Avx512Available()) GTEST_SKIP() << "no AVX-512";
  Rng rng(91);
  const std::string pattern = RandomBytes(40, &rng, false);
  std::vector<std::string> texts(13);
  for (size_t j = 0; j < texts.size(); ++j) {
    texts[j] = RandomBytes(rng.NextBounded(120), &rng, j % 3 == 0);
  }
  std::vector<size_t> scalar_out, avx512_out;
  {
    ScopedSimdLevel scalar(SimdLevel::kScalar);
    LevenshteinDistanceBatch(pattern, texts, &scalar_out);
  }
  {
    ScopedSimdLevel avx512(SimdLevel::kAvx512);
    LevenshteinDistanceBatch(pattern, texts, &avx512_out);
  }
  EXPECT_EQ(scalar_out, avx512_out);
}

// ---------------------------------------------------------------------------
// Mask-parallel Jaro-Winkler: bitwise against the scalar window walk.

TEST(JaroWinklerBatchAvx512, BitIdenticalToScalarOverRandomizedStrings) {
  if (!Avx512Available()) GTEST_SKIP() << "no AVX-512";
  // Lengths straddle the 64-byte zmm capacity (the > 64 cases take the
  // scratch fallback inside the same batch call) and include empties.
  Rng rng(123);
  std::vector<std::string> candidates;
  for (size_t j = 0; j < 40; ++j) {
    candidates.push_back(RandomBytes(rng.NextBounded(71), &rng, j % 2 == 0));
  }
  candidates.push_back("");
  for (size_t qlen : {size_t{0}, size_t{1}, size_t{8}, size_t{33}, size_t{64},
                      size_t{70}}) {
    const std::string query = RandomBytes(qlen, &rng, qlen % 2 == 1);
    std::vector<double> scalar_out, avx512_out;
    {
      ScopedSimdLevel scalar(SimdLevel::kScalar);
      JaroWinklerSimilarityBatch(query, candidates, &scalar_out);
    }
    {
      ScopedSimdLevel avx512(SimdLevel::kAvx512);
      JaroWinklerSimilarityBatch(query, candidates, &avx512_out);
    }
    ASSERT_EQ(scalar_out.size(), avx512_out.size());
    for (size_t j = 0; j < candidates.size(); ++j) {
      ASSERT_EQ(avx512_out[j], scalar_out[j])
          << "|query|=" << qlen << " candidate " << j << " |b|="
          << candidates[j].size();
      ASSERT_EQ(avx512_out[j], JaroWinklerSimilarity(query, candidates[j]))
          << "per-call entry point, candidate " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Fused-vs-staged pipeline differentials.

struct IterWorld {
  Dataset ds{"test"};
  PairSpace pairs;
  BipartiteGraph graph;
  std::vector<double> probability;

  explicit IterWorld(uint64_t seed, size_t num_records = 60,
                     size_t vocab = 150) {
    Rng rng(seed);
    for (size_t r = 0; r < num_records; ++r) {
      std::string text;
      const size_t k = 2 + rng.NextBounded(10);
      for (size_t t = 0; t < k; ++t) {
        if (!text.empty()) text += ' ';
        text += 't';
        text += std::to_string(rng.NextBounded(vocab));
      }
      ds.AddRecord(0, text);
    }
    pairs = PairSpace::Build(ds);
    graph = BipartiteGraph::Build(ds, pairs);
    probability.resize(pairs.size());
    for (double& p : probability) p = rng.UniformDouble();
  }
};

TEST(FusedIterDifferential, FusedSweepIsBitIdenticalToStaged) {
  IterWorld world(51);
  ThreadPool pool(4);
  for (IterNormalization norm :
       {IterNormalization::kLogistic, IterNormalization::kL2}) {
    for (bool parallel : {false, true}) {
      IterOptions staged;
      staged.max_iterations = 25;
      staged.normalization = norm;
      staged.track_convergence = true;
      staged.fuse_sweeps = false;
      IterOptions fused = staged;
      fused.fuse_sweeps = true;
      ExecContext ctx;
      if (parallel) ctx.pool = &pool;
      IterResult a = RunIter(world.graph, world.probability, staged, ctx)
                         .value();
      IterResult b =
          RunIter(world.graph, world.probability, fused, ctx).value();
      // Same chunking, same per-element ops, serial partial combine: the
      // weights, scores, per-sweep deltas and the convergence decision all
      // match bit for bit.
      EXPECT_EQ(a.term_weights, b.term_weights);
      EXPECT_EQ(a.pair_scores, b.pair_scores);
      EXPECT_EQ(a.update_trace, b.update_trace);
      EXPECT_EQ(a.iterations, b.iterations);
      EXPECT_EQ(a.converged, b.converged);
    }
  }
}

TEST(FusedIterDifferential, MultiChunkFusedSweepIsThreadCountInvariant) {
  // Terms span several 4096-wide reduction chunks, so the fused sweep's
  // parallel partial combine is exercised proper.
  IterWorld world(29, /*num_records=*/1200, /*vocab=*/12000);
  ASSERT_GT(world.graph.num_terms(), 4096u);
  IterOptions options;
  options.normalization = IterNormalization::kL2;
  options.max_iterations = 3;
  options.tolerance = 0.0;
  options.fuse_sweeps = true;
  IterResult serial = RunIter(world.graph, world.probability, options).value();
  ThreadPool pool(5);
  IterResult parallel = RunIter(world.graph, world.probability, options,
                                ExecContext::WithPool(&pool))
                            .value();
  EXPECT_EQ(serial.term_weights, parallel.term_weights);
  EXPECT_EQ(serial.pair_scores, parallel.pair_scores);

  options.fuse_sweeps = false;
  IterResult staged = RunIter(world.graph, world.probability, options).value();
  EXPECT_EQ(serial.term_weights, staged.term_weights);
}

struct ErdosRenyiWorld {
  PairSpace pairs;
  std::vector<double> sims;
  RecordGraph graph;

  ErdosRenyiWorld(size_t n, double density, uint64_t seed)
      : pairs(BuildPairs(n, density, seed)), graph(BuildGraph(n, seed)) {}

  static PairSpace BuildPairs(size_t n, double density, uint64_t seed) {
    Rng rng(seed);
    std::vector<RecordPair> edges;
    for (uint32_t a = 0; a < n; ++a) {
      for (uint32_t b = a + 1; b < n; ++b) {
        if (rng.UniformDouble() < density) edges.push_back({a, b});
      }
    }
    return PairSpace::FromPairs(std::move(edges));
  }

  RecordGraph BuildGraph(size_t n, uint64_t seed) {
    Rng rng(seed + 1);
    sims.resize(pairs.size());
    for (double& s : sims) s = rng.UniformDouble();
    return RecordGraph::Build(n, pairs, sims);
  }
};

class FusedCliqueRankDifferential
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(FusedCliqueRankDifferential, FusedPassesAreBitIdenticalToStaged) {
  auto [density, seed] = GetParam();
  ErdosRenyiWorld world(48, density, seed);
  if (world.pairs.size() == 0) GTEST_SKIP() << "empty graph";
  ThreadPool pool(4);
  for (CliqueRankEngine engine :
       {CliqueRankEngine::kDense, CliqueRankEngine::kMaskedSparse}) {
    for (BoostMode mode : {BoostMode::kSampled, BoostMode::kExpected}) {
      for (bool use_boost : {true, false}) {
        CliqueRankOptions staged;
        staged.engine = engine;
        staged.boost_mode = mode;
        staged.use_boost = use_boost;
        staged.seed = seed * 1000 + 7;
        staged.max_steps = 8;
        staged.fuse_passes = false;
        CliqueRankOptions fused = staged;
        fused.fuse_passes = true;

        CliqueRankResult rs =
            RunCliqueRank(world.graph, world.pairs, staged).value();
        CliqueRankResult rf =
            RunCliqueRank(world.graph, world.pairs, fused).value();
        // The fused setup preserves RNG draw order and every arithmetic
        // op; the fused accumulate is elementwise — bit for bit.
        EXPECT_EQ(rs.pair_probability, rf.pair_probability)
            << "engine " << static_cast<int>(engine) << " mode "
            << static_cast<int>(mode) << " boost " << use_boost;

        CliqueRankResult rp = RunCliqueRank(world.graph, world.pairs, fused,
                                            ExecContext::WithPool(&pool))
                                  .value();
        EXPECT_EQ(rf.pair_probability, rp.pair_probability)
            << "fused pool run diverged, engine " << static_cast<int>(engine);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensitySweep, FusedCliqueRankDifferential,
    ::testing::Combine(::testing::Values(0.1, 0.4),
                       ::testing::Values<uint64_t>(1, 2, 3)),
    [](const auto& info) {
      std::string name = "d";
      name += std::to_string(static_cast<int>(std::get<0>(info.param) * 100));
      name += "_s";
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

}  // namespace
}  // namespace gter
