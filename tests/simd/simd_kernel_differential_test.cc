// SIMD-vs-scalar differential tests for the dispatched compute core:
// packed GEMM (≤1e-12 relative, FMA-reassociated), the masked-product
// kernels (bitwise — they share the scalar summation order), the
// gather-reduce primitives behind the ITER sweeps, the batched
// Jaro-Winkler (bitwise), the end-to-end RunIter, and the dispatch
// machinery itself. AVX2-dependent cases GTEST_SKIP on machines or builds
// without the level, so the suite passes everywhere.

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gter/common/cpu.h"
#include "gter/common/metrics.h"
#include "gter/common/random.h"
#include "gter/common/simd_ops.h"
#include "gter/common/thread_pool.h"
#include "gter/common/trace.h"
#include "gter/core/iter.h"
#include "gter/er/dataset.h"
#include "gter/er/pair_space.h"
#include "gter/graph/bipartite_graph.h"
#include "gter/matrix/csr_matrix.h"
#include "gter/matrix/gemm.h"
#include "gter/matrix/masked_multiply.h"
#include "gter/text/string_metrics.h"

namespace gter {
namespace {

bool Avx2Available() { return DetectSimdLevel() >= SimdLevel::kAvx2; }

// ---------------------------------------------------------------------------
// Dispatch machinery.

TEST(SimdDispatch, ParseSimdLevel) {
  SimdLevel level;
  ASSERT_TRUE(ParseSimdLevel("scalar", &level));
  EXPECT_EQ(level, SimdLevel::kScalar);
  ASSERT_TRUE(ParseSimdLevel("avx2", &level));
  EXPECT_EQ(level, SimdLevel::kAvx2);
  ASSERT_TRUE(ParseSimdLevel("avx512", &level));
  EXPECT_EQ(level, SimdLevel::kAvx512);
  ASSERT_TRUE(ParseSimdLevel("auto", &level));
  EXPECT_EQ(level, DetectSimdLevel());
  EXPECT_FALSE(ParseSimdLevel("sse9", &level));
  EXPECT_FALSE(ParseSimdLevel("", &level));
}

TEST(SimdDispatch, LevelNamesRoundTrip) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx512), "avx512");
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    SimdLevel parsed;
    ASSERT_TRUE(ParseSimdLevel(SimdLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
}

TEST(SimdDispatch, ScopedLevelRestores) {
  const SimdLevel before = ActiveSimdLevel();
  {
    ScopedSimdLevel scoped(SimdLevel::kScalar);
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  }
  EXPECT_EQ(ActiveSimdLevel(), before);
}

TEST(SimdDispatch, SetSimdLevelClampsToDetected) {
  const SimdLevel before = ActiveSimdLevel();
  SetSimdLevel(SimdLevel::kAvx2);
  // Requesting avx2 on a scalar-only machine degrades instead of crashing.
  EXPECT_LE(ActiveSimdLevel(), DetectSimdLevel());
  // Same for avx512 on an avx2-only (or scalar-only) machine: the request
  // clamps to the detected tier, it never selects unrunnable kernels.
  SetSimdLevel(SimdLevel::kAvx512);
  EXPECT_LE(ActiveSimdLevel(), DetectSimdLevel());
  {
    ScopedSimdLevel scoped(SimdLevel::kAvx512);
    EXPECT_LE(ActiveSimdLevel(), DetectSimdLevel());
  }
  SetSimdLevel(before);
}

TEST(SimdDispatch, CpuFeaturesSane) {
  const CpuFeatures& f = DetectCpuFeatures();
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_TRUE(f.sse2);  // x86-64 baseline
#endif
  // avx2 without avx would mean the XGETBV OS check is wrong.
  if (f.avx2) {
    EXPECT_TRUE(f.avx);
  }
  EXPECT_FALSE(CpuFeatureString().empty());
}

TEST(SimdDispatch, EmitCpuInfoRecordsGaugesAndTraceLabel) {
  MetricsRegistry metrics;
  TraceRecorder trace;
  EmitCpuInfo(&metrics, &trace);
  const CpuFeatures& f = DetectCpuFeatures();
  EXPECT_EQ(metrics.Gauge("cpu/avx2"), f.avx2 ? 1.0 : 0.0);
  EXPECT_EQ(metrics.Gauge("cpu/fma"), f.fma ? 1.0 : 0.0);
  EXPECT_EQ(metrics.Gauge("cpu/avx512f"), f.avx512f ? 1.0 : 0.0);
  EXPECT_EQ(metrics.Gauge("cpu/avx512bw"), f.avx512bw ? 1.0 : 0.0);
  EXPECT_EQ(metrics.Gauge("cpu/avx512dq"), f.avx512dq ? 1.0 : 0.0);
  EXPECT_EQ(metrics.Gauge("cpu/avx512vl"), f.avx512vl ? 1.0 : 0.0);
  EXPECT_EQ(metrics.Gauge("cpu/avx512vpopcntdq"),
            f.avx512vpopcntdq ? 1.0 : 0.0);
  EXPECT_EQ(metrics.Gauge("simd/level"),
            static_cast<double>(ActiveSimdLevel()));
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("process_labels"), std::string::npos);
  EXPECT_NE(json.find("simd="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Gather-reduce primitives (the ITER sweep inner loops).

class IndexedSumDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(IndexedSumDifferential, Avx2MatchesScalarWithinTolerance) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2";
  const size_t n = GetParam();
  Rng rng(n * 7 + 1);
  std::vector<double> values(1000);
  std::vector<double> weights(1000);
  for (double& v : values) v = rng.UniformDouble(-1.0, 1.0);
  for (double& w : weights) w = rng.UniformDouble(0.0, 1.0);
  std::vector<uint32_t> idx(n);
  for (uint32_t& i : idx) i = static_cast<uint32_t>(rng.NextBounded(1000));

  const IndexedSumFn simd_sum = ResolveIndexedSum(SimdLevel::kAvx2);
  const IndexedWeightedSumFn simd_wsum =
      ResolveIndexedWeightedSum(SimdLevel::kAvx2);
  ASSERT_NE(simd_sum, &IndexedSumScalar);

  const double ref = IndexedSumScalar(values.data(), idx.data(), n);
  const double got = simd_sum(values.data(), idx.data(), n);
  EXPECT_NEAR(got, ref, 1e-12 * std::max(1.0, std::fabs(ref))) << "n=" << n;

  const double wref =
      IndexedWeightedSumScalar(weights.data(), values.data(), idx.data(), n);
  const double wgot = simd_wsum(weights.data(), values.data(), idx.data(), n);
  EXPECT_NEAR(wgot, wref, 1e-12 * std::max(1.0, std::fabs(wref))) << "n=" << n;
}

// Sizes cover the scalar tail (<4), one vector, the unroll-by-8 main loop,
// and every remainder class mod 8.
INSTANTIATE_TEST_SUITE_P(Sizes, IndexedSumDifferential,
                         ::testing::Values(0, 1, 3, 4, 5, 7, 8, 9, 12, 15, 16,
                                           33, 100, 1000));

TEST(IndexedSum, ScalarResolutionIsTheReferenceFunction) {
  EXPECT_EQ(ResolveIndexedSum(SimdLevel::kScalar), &IndexedSumScalar);
  EXPECT_EQ(ResolveIndexedWeightedSum(SimdLevel::kScalar),
            &IndexedWeightedSumScalar);
}

// ---------------------------------------------------------------------------
// Packed GEMM.

DenseMatrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  DenseMatrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng->UniformDouble(-1.0, 1.0);
  }
  return m;
}

void ExpectGemmClose(const DenseMatrix& ref, const DenseMatrix& got) {
  ASSERT_EQ(ref.rows(), got.rows());
  ASSERT_EQ(ref.cols(), got.cols());
  for (size_t r = 0; r < ref.rows(); ++r) {
    for (size_t c = 0; c < ref.cols(); ++c) {
      const double tolerance =
          1e-12 * std::max(1.0, std::fabs(ref(r, c)));
      ASSERT_NEAR(got(r, c), ref(r, c), tolerance) << "at (" << r << ", " << c
                                                   << ")";
    }
  }
}

// (m, k, n) shapes straddling every packing edge: the 4-row micropanel, the
// 8-column panel, the 64-row MC block, and the 256-deep KC slab.
class GemmDifferential
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(GemmDifferential, PackedAvx2MatchesScalarWithinTolerance) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2";
  auto [m, k, n] = GetParam();
  Rng rng(m * 131 + k * 17 + n);
  DenseMatrix a = RandomMatrix(m, k, &rng);
  DenseMatrix b = RandomMatrix(k, n, &rng);

  DenseMatrix ref, got;
  {
    ScopedSimdLevel scalar(SimdLevel::kScalar);
    Gemm(a, b, &ref);
  }
  {
    ScopedSimdLevel avx2(SimdLevel::kAvx2);
    Gemm(a, b, &got);
  }
  ExpectGemmClose(ref, got);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmDifferential,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(4, 8, 8), std::make_tuple(5, 9, 17),
                      std::make_tuple(63, 64, 65), std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 257, 9), std::make_tuple(70, 31, 70),
                      std::make_tuple(130, 300, 66)));

TEST(GemmSimd, SparseRowsSurviveThePanelSkip) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2";
  // Rows 0-3 all zero, row 4 dense: the all-zero micropanel must be
  // skipped without corrupting C, and the mixed panel must still compute.
  Rng rng(5);
  DenseMatrix a(9, 300, 0.0);
  for (size_t c = 0; c < 300; ++c) a(4, c) = rng.UniformDouble(-1.0, 1.0);
  for (size_t c = 0; c < 300; c += 3) a(8, c) = rng.UniformDouble(-1.0, 1.0);
  DenseMatrix b = RandomMatrix(300, 33, &rng);
  DenseMatrix ref, got;
  {
    ScopedSimdLevel scalar(SimdLevel::kScalar);
    Gemm(a, b, &ref);
  }
  {
    ScopedSimdLevel avx2(SimdLevel::kAvx2);
    Gemm(a, b, &got);
  }
  ExpectGemmClose(ref, got);
  for (size_t c = 0; c < 33; ++c) ASSERT_EQ(got(0, c), 0.0);
}

TEST(GemmSimd, PackedKernelIsThreadCountInvariant) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2";
  Rng rng(9);
  DenseMatrix a = RandomMatrix(150, 90, &rng);
  DenseMatrix b = RandomMatrix(90, 70, &rng);
  ScopedSimdLevel avx2(SimdLevel::kAvx2);
  DenseMatrix serial, parallel;
  Gemm(a, b, &serial);
  ThreadPool pool(4);
  Gemm(a, b, &parallel, ExecContext::WithPool(&pool));
  // Row blocks are computed independently with a fixed k-order, so the
  // pool changes nothing — bit for bit.
  EXPECT_EQ(serial.MaxAbsDiff(parallel), 0.0);
}

// ---------------------------------------------------------------------------
// Masked-product kernels: bitwise contract.

CsrMatrix ErdosRenyiCsr(size_t n, size_t edges_per_node, uint64_t seed) {
  Rng rng(seed);
  std::vector<CsrMatrix::Triplet> triplets;
  for (uint32_t i = 0; i < n; ++i) {
    for (size_t e = 0; e < edges_per_node; ++e) {
      uint32_t j = static_cast<uint32_t>(rng.NextBounded(n));
      if (j == i) continue;
      triplets.push_back({i, j, rng.OpenUniformDouble()});
      triplets.push_back({j, i, rng.OpenUniformDouble()});
    }
  }
  return CsrMatrix::FromTriplets(n, n, triplets);
}

class MaskedProductDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaskedProductDifferential, Avx2MatchesScalarBitwise) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2";
  const uint64_t seed = GetParam();
  const size_t n = 400;
  CsrMatrix trans = ErdosRenyiCsr(n, 6, seed);
  trans.NormalizeRows();
  CsrMatrix pattern = trans;  // same structure
  Rng rng(seed + 99);
  std::vector<double> prev(pattern.nnz());
  for (double& v : prev) v = rng.OpenUniformDouble();
  std::vector<double> dense(n * n, 0.0);
  ScatterToDense(pattern, prev.data(), dense.data());

  std::vector<double> ref_dense(pattern.nnz()), got_dense(pattern.nnz());
  std::vector<double> ref_csr(pattern.nnz()), got_csr(pattern.nnz());
  {
    ScopedSimdLevel scalar(SimdLevel::kScalar);
    ComputeMaskedProduct(trans, dense.data(), pattern, ref_dense.data());
    ComputeMaskedProductCsr(trans, prev.data(), pattern, ref_csr.data());
  }
  {
    ScopedSimdLevel avx2(SimdLevel::kAvx2);
    ComputeMaskedProduct(trans, dense.data(), pattern, got_dense.data());
    ComputeMaskedProductCsr(trans, prev.data(), pattern, got_csr.data());
  }
  // The AVX2 twins preserve the scalar per-entry summation order exactly
  // (no FMA, lane == entry), so equality is exact, keeping the existing
  // dense-vs-CSR ASSERT_EQ contract intact at every dispatch level.
  for (size_t e = 0; e < pattern.nnz(); ++e) {
    ASSERT_EQ(got_dense[e], ref_dense[e]) << "dense kernel entry " << e;
    ASSERT_EQ(got_csr[e], ref_csr[e]) << "csr kernel entry " << e;
    ASSERT_EQ(got_csr[e], got_dense[e]) << "cross-kernel entry " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskedProductDifferential,
                         ::testing::Values(11, 12, 13));

// ---------------------------------------------------------------------------
// RunIter end-to-end.

struct IterWorld {
  Dataset ds{"test"};
  PairSpace pairs;
  BipartiteGraph graph;
  std::vector<double> probability;

  /// Synthetic records of random tokens: adjacency sizes vary, so both the
  /// gather-reduce tails and main loops run. Scale `num_records`/`vocab`
  /// up to push num_terms past one reduction chunk (4096).
  explicit IterWorld(uint64_t seed, size_t num_records = 60,
                     size_t vocab = 150) {
    Rng rng(seed);
    for (size_t r = 0; r < num_records; ++r) {
      std::string text;
      const size_t k = 2 + rng.NextBounded(10);
      for (size_t t = 0; t < k; ++t) {
        if (!text.empty()) text += ' ';
        text += 't';
        text += std::to_string(rng.NextBounded(vocab));
      }
      ds.AddRecord(0, text);
    }
    pairs = PairSpace::Build(ds);
    graph = BipartiteGraph::Build(ds, pairs);
    probability.resize(pairs.size());
    for (double& p : probability) p = rng.UniformDouble();
  }
};

TEST(IterSimd, SimdRunMatchesScalarRunWithinTolerance) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2";
  IterWorld world(42);
  IterOptions options;
  options.max_iterations = 30;
  IterResult ref, got;
  {
    ScopedSimdLevel scalar(SimdLevel::kScalar);
    ref = RunIter(world.graph, world.probability, options).value();
  }
  {
    ScopedSimdLevel avx2(SimdLevel::kAvx2);
    got = RunIter(world.graph, world.probability, options).value();
  }
  ASSERT_EQ(ref.term_weights.size(), got.term_weights.size());
  for (size_t t = 0; t < ref.term_weights.size(); ++t) {
    EXPECT_NEAR(got.term_weights[t], ref.term_weights[t], 1e-10) << t;
  }
  for (size_t p = 0; p < ref.pair_scores.size(); ++p) {
    EXPECT_NEAR(got.pair_scores[p], ref.pair_scores[p], 1e-10) << p;
  }
}

TEST(IterSimd, PoolRunIsBitIdenticalAtEveryLevel) {
  IterWorld world(7);
  IterOptions options;
  options.max_iterations = 20;
  ThreadPool pool(4);
  for (SimdLevel level : {SimdLevel::kScalar, DetectSimdLevel()}) {
    ScopedSimdLevel scoped(level);
    IterResult serial =
        RunIter(world.graph, world.probability, options).value();
    IterResult parallel = RunIter(world.graph, world.probability, options,
                                  ExecContext::WithPool(&pool))
                              .value();
    // Sweeps are gather-style and the chunked reductions have fixed
    // boundaries, so thread count changes nothing — bit for bit.
    EXPECT_EQ(serial.term_weights, parallel.term_weights)
        << "level " << SimdLevelName(level);
    EXPECT_EQ(serial.pair_scores, parallel.pair_scores)
        << "level " << SimdLevelName(level);
    EXPECT_EQ(serial.iterations, parallel.iterations);
  }
}

TEST(IterSimd, L2NormalizationParallelReductionIsDeterministic) {
  IterWorld world(13);
  IterOptions options;
  options.normalization = IterNormalization::kL2;
  options.max_iterations = 15;
  ThreadPool pool(3);
  IterResult serial = RunIter(world.graph, world.probability, options).value();
  IterResult parallel = RunIter(world.graph, world.probability, options,
                                ExecContext::WithPool(&pool))
                            .value();
  EXPECT_EQ(serial.term_weights, parallel.term_weights);
}

TEST(IterSimd, MultiChunkReductionsAreThreadCountInvariant) {
  // Enough distinct terms that the convergence-delta / L2-norm reductions
  // span several 4096-wide chunks — the parallel partial-sum path proper.
  IterWorld world(29, /*num_records=*/1200, /*vocab=*/12000);
  ASSERT_GT(world.graph.num_terms(), 4096u);
  IterOptions options;
  options.normalization = IterNormalization::kL2;
  options.max_iterations = 3;
  options.tolerance = 0.0;
  IterResult serial = RunIter(world.graph, world.probability, options).value();
  ThreadPool pool(5);
  IterResult parallel = RunIter(world.graph, world.probability, options,
                                ExecContext::WithPool(&pool))
                            .value();
  EXPECT_EQ(serial.term_weights, parallel.term_weights);
  EXPECT_EQ(serial.pair_scores, parallel.pair_scores);
}

// ---------------------------------------------------------------------------
// Batched Jaro-Winkler.

TEST(JaroWinklerBatch, BitIdenticalToPerCallEntryPoint) {
  const std::vector<std::string> candidates = {
      "",           "arnie",     "arnie mortons", "morton arnies",
      "campanile",  "champagne", "panasonic",     "pansonic",
      "x",          "arnie mortons of chicago 435 s la cienega blvd"};
  std::vector<double> batch;
  for (const char* query :
       {"arnie mortons", "campanile", "", "z", "panasonic pslx350h"}) {
    JaroWinklerSimilarityBatch(query, candidates, &batch);
    ASSERT_EQ(batch.size(), candidates.size());
    for (size_t j = 0; j < candidates.size(); ++j) {
      ASSERT_EQ(batch[j], JaroWinklerSimilarity(query, candidates[j]))
          << "query '" << query << "' candidate " << j;
    }
  }
}

TEST(JaroWinklerBatch, EmptyCandidateList) {
  std::vector<double> out(3, -1.0);
  JaroWinklerSimilarityBatch("abc", {}, &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace gter
