// gterd end-to-end tests: real sockets against an ephemeral-port server.
//
// These cover the network layer's contract — framing, error mapping,
// deadlines, disconnect cancellation, concurrency — not resolution
// quality, which has its own suites.

#include "gter/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gter/common/prom.h"
#include "gter/core/clusterer.h"
#include "gter/server/client.h"

namespace gter {
namespace {

using std::chrono::steady_clock;

double SecondsSince(steady_clock::time_point start) {
  return std::chrono::duration<double>(steady_clock::now() - start).count();
}

/// A tiny five-record dataset (two duplicate pairs and a singleton), the
/// trained service, and a listening server on an ephemeral loopback port.
struct ServerFixture {
  std::unique_ptr<ResolutionService> service;
  std::unique_ptr<GterdServer> server;

  explicit ServerFixture(GterdServerOptions options = {},
                         ResolutionServiceOptions service_options = {}) {
    Dataset dataset("server-test");
    dataset.AddRecord(0, "golden dragon szechuan pasadena 8185551234");
    dataset.AddRecord(0, "golden dragon szechuan pasadena 8185551234");
    dataset.AddRecord(0, "blue lagoon seafood grill marina 3105559876");
    dataset.AddRecord(0, "blue lagoon seafood grill marina 3105559876");
    dataset.AddRecord(0, "taco fiesta cantina downtown 2135550000");
    auto built = ResolutionService::Create(std::move(dataset),
                                           std::move(service_options));
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    service = std::move(built).value();
    auto started = GterdServer::Start(service.get(), options);
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    server = std::move(started).value();
  }

  GterdClient Connect() {
    auto client = GterdClient::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }
};

TEST(GterdServerTest, StatsReflectsTrainedModel) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  auto stats = client.Call("stats", JsonValue::MakeObject());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().NumberOr("records", -1), 5.0);
  EXPECT_GT(stats.value().NumberOr("candidate_pairs", -1), 0.0);
  EXPECT_GE(stats.value().NumberOr("requests_total", -1), 1.0);
}

TEST(GterdServerTest, PairScoreServesModelValuesForCandidatePairs) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  JsonValue params = JsonValue::MakeObject();
  params.Set("a", JsonValue::MakeNumber(0));
  params.Set("b", JsonValue::MakeNumber(1));
  auto r = client.Call("pair_score", std::move(params));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Records 0 and 1 are identical: they share terms, so they are in the
  // candidate space with a positive score.
  EXPECT_TRUE(r.value().Find("in_candidate_space")->boolean());
  EXPECT_GT(r.value().NumberOr("score", -1), 0.0);
}

TEST(GterdServerTest, PairScoreOutOfRangeId) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  JsonValue params = JsonValue::MakeObject();
  params.Set("a", JsonValue::MakeNumber(0));
  params.Set("b", JsonValue::MakeNumber(999));
  auto r = client.Call("pair_score", std::move(params));
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(GterdServerTest, UnknownMethodIsNotFound) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  auto r = client.Call("frobnicate", JsonValue::MakeObject());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(GterdServerTest, MissingParamsAreInvalidArgument) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  EXPECT_EQ(client.Call("pair_score", JsonValue::MakeObject()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client.Call("resolve", JsonValue::MakeObject()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GterdServerTest, ResolveFindsTheMatchingRecord) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  JsonValue params = JsonValue::MakeObject();
  params.Set("text", JsonValue::MakeString("golden dragon pasadena"));
  auto r = client.Call("resolve", std::move(params));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const JsonValue* best = r.value().Find("best");
  ASSERT_NE(best, nullptr);
  ASSERT_FALSE(best->is_null());
  const double record = best->NumberOr("record", -1);
  EXPECT_TRUE(record == 0.0 || record == 1.0);
  // The clique always contains the best match itself.
  const JsonValue* clique = r.value().Find("clique");
  ASSERT_NE(clique, nullptr);
  bool found = false;
  for (const JsonValue& member : clique->array()) {
    if (member.number() == record) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GterdServerTest, ResolveSucceedsWithEveryRegisteredClusterer) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  for (ClustererKind kind : AllClustererKinds()) {
    SCOPED_TRACE(ClustererKindName(kind));
    JsonValue params = JsonValue::MakeObject();
    params.Set("text", JsonValue::MakeString("golden dragon pasadena"));
    params.Set("clusterer", JsonValue::MakeString(ClustererKindName(kind)));
    auto r = client.Call("resolve", std::move(params));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // The response names the endgame that produced its clique.
    const JsonValue* used = r.value().Find("clusterer");
    ASSERT_NE(used, nullptr);
    EXPECT_EQ(used->string(), ClustererKindName(kind));
    const JsonValue* best = r.value().Find("best");
    ASSERT_NE(best, nullptr);
    ASSERT_FALSE(best->is_null());
    const double record = best->NumberOr("record", -1);
    // The fresh partition's clique contains the best match itself.
    const JsonValue* clique = r.value().Find("clique");
    ASSERT_NE(clique, nullptr);
    bool found = false;
    for (const JsonValue& member : clique->array()) {
      if (member.number() == record) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(GterdServerTest, UnknownClustererIsInvalidArgumentAndKeepsConnection) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  JsonValue params = JsonValue::MakeObject();
  params.Set("text", JsonValue::MakeString("golden dragon pasadena"));
  params.Set("clusterer", JsonValue::MakeString("kmeans"));
  auto r = client.Call("resolve", std::move(params));
  // Answered ok:false with InvalidArgument — not dropped.
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The connection survives and keeps serving.
  auto stats = client.Call("stats", JsonValue::MakeObject());
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
}

TEST(GterdServerTest, DeadlineFiresInsideASlowHierarchicalResolve) {
  // A hub term shared by every record makes the candidate space complete
  // (n·(n−1)/2 pairs), so the hierarchical endgame has tens of thousands
  // of heap operations to do — far more than a 1 ms deadline allows. The
  // endgame polls per merge, so the deadline fires inside the run and is
  // answered as DeadlineExceeded on a connection that stays usable.
  Dataset dataset("server-slow-test");
  for (int i = 0; i < 300; ++i) {
    dataset.AddRecord(0, "hub entry" + std::to_string(i) + " tag" +
                             std::to_string(i % 7));
  }
  ResolutionServiceOptions options;
  options.fusion.rounds = 1;
  options.fusion.cliquerank.max_steps = 5;
  auto built = ResolutionService::Create(std::move(dataset), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto service = std::move(built).value();
  auto started = GterdServer::Start(service.get(), {});
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  auto server = std::move(started).value();

  auto connected = GterdClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(connected.ok());
  GterdClient client = std::move(connected).value();

  JsonValue params = JsonValue::MakeObject();
  params.Set("text", JsonValue::MakeString("hub entry42"));
  params.Set("clusterer", JsonValue::MakeString("hierarchical"));
  const auto start = steady_clock::now();
  auto r = client.Call("resolve", std::move(params), /*deadline_ms=*/1);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  EXPECT_LT(SecondsSince(start), 10.0);

  // The same connection still serves; without a deadline the same
  // request completes.
  JsonValue retry = JsonValue::MakeObject();
  retry.Set("text", JsonValue::MakeString("hub entry42"));
  retry.Set("clusterer", JsonValue::MakeString("hierarchical"));
  auto ok = client.Call("resolve", std::move(retry));
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(GterdServerTest, AddRecordIsImmediatelyResolvable) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  JsonValue add = JsonValue::MakeObject();
  add.Set("text",
          JsonValue::MakeString("zanzibar mango treehouse 5105551111"));
  auto added = client.Call("add_record", std::move(add));
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(added.value().NumberOr("record", -1), 5.0);

  JsonValue query = JsonValue::MakeObject();
  query.Set("text", JsonValue::MakeString("zanzibar treehouse"));
  auto resolved = client.Call("resolve", std::move(query));
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_EQ(resolved.value().Find("best")->NumberOr("record", -1), 5.0);
}

// --- Incremental serving mode (DESIGN.md §4g) --------------------------

ResolutionServiceOptions IncrementalOptions() {
  ResolutionServiceOptions options;
  options.incremental = true;
  return options;
}

TEST(GterdServerTest, IncrementalAddRecordResolvesIntoExistingCluster) {
  ServerFixture fx({}, IncrementalOptions());
  GterdClient client = fx.Connect();

  // The incremental fixture clusters the two duplicate pairs at build.
  auto before = client.Call("stats", JsonValue::MakeObject());
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_TRUE(before.value().Find("incremental")->boolean());
  EXPECT_EQ(before.value().NumberOr("cliques", -1), 3.0);

  // A third copy of the golden-dragon record must land in its cluster —
  // a real ingest, not the batch mode's provisional singleton.
  JsonValue add = JsonValue::MakeObject();
  add.Set("text",
          JsonValue::MakeString("golden dragon szechuan pasadena 8185551234"));
  auto added = client.Call("add_record", std::move(add));
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(added.value().NumberOr("record", -1), 5.0);
  EXPECT_EQ(added.value().NumberOr("cluster_size", -1), 3.0);
  EXPECT_GE(added.value().NumberOr("new_pairs", -1), 2.0);
  // Satellite contract: the response reports the post-ingest sizes.
  EXPECT_EQ(added.value().NumberOr("records", -1), 6.0);
  EXPECT_GT(added.value().NumberOr("vocabulary_terms", -1), 0.0);

  // Its cluster is the one records 0/1 already occupy.
  JsonValue query = JsonValue::MakeObject();
  query.Set("text", JsonValue::MakeString("golden dragon pasadena"));
  auto resolved = client.Call("resolve", std::move(query));
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  const JsonValue* clique = resolved.value().Find("clique");
  ASSERT_NE(clique, nullptr);
  EXPECT_EQ(clique->array().size(), 3u);

  // And pair_score sees the new record inside the live candidate space.
  JsonValue pair = JsonValue::MakeObject();
  pair.Set("a", JsonValue::MakeNumber(0));
  pair.Set("b", JsonValue::MakeNumber(5));
  auto scored = client.Call("pair_score", std::move(pair));
  ASSERT_TRUE(scored.ok()) << scored.status().ToString();
  EXPECT_TRUE(scored.value().Find("in_candidate_space")->boolean());
  EXPECT_TRUE(scored.value().Find("match")->boolean());
}

TEST(GterdServerTest, IncrementalStatsExposesIngestCounters) {
  ServerFixture fx({}, IncrementalOptions());
  GterdClient client = fx.Connect();
  JsonValue add = JsonValue::MakeObject();
  add.Set("text", JsonValue::MakeString("harbor house oyster bar 4155552222"));
  ASSERT_TRUE(client.Call("add_record", std::move(add)).ok());

  auto stats = client.Call("stats", JsonValue::MakeObject());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const JsonValue* ingest = stats.value().Find("ingest");
  ASSERT_NE(ingest, nullptr);
  EXPECT_EQ(ingest->NumberOr("records_ingested", -1), 1.0);
  // Build-batch converge + one ingest converge.
  EXPECT_GE(ingest->NumberOr("dirty_reiter_runs", -1), 2.0);
  EXPECT_GE(ingest->NumberOr("last_converge_sweeps", -1), 1.0);
  EXPECT_FALSE(ingest->Find("pending_dirty")->boolean());
  EXPECT_GE(ingest->NumberOr("state_version", -1), 2.0);
  // The batch-mode fixture serves no ingest object.
  ServerFixture batch;
  GterdClient batch_client = batch.Connect();
  auto batch_stats = batch_client.Call("stats", JsonValue::MakeObject());
  ASSERT_TRUE(batch_stats.ok());
  EXPECT_FALSE(batch_stats.value().Find("incremental")->boolean());
  EXPECT_EQ(batch_stats.value().Find("ingest"), nullptr);
}

TEST(GterdServerTest, MalformedJsonAnswersErrorAndKeepsConnection) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  ASSERT_TRUE(client.SendRaw("{this is not json").ok());
  auto frame = client.ReadResponseFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_FALSE(frame.value().Find("ok")->boolean());
  EXPECT_TRUE(frame.value().Find("id")->is_null());
  EXPECT_EQ(frame.value().Find("error")->Find("code")->string(),
            "InvalidArgument");
  // The line framing survived: the same connection still serves requests.
  auto stats = client.Call("stats", JsonValue::MakeObject());
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
}

TEST(GterdServerTest, BlankAndCrlfLinesAreTolerated) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  ASSERT_TRUE(client.SendRaw("").ok());  // blank keep-alive line
  ASSERT_TRUE(client.SendRaw("{\"id\": 9, \"method\": \"stats\"}\r").ok());
  auto frame = client.ReadResponseFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().Find("id")->number(), 9.0);
  EXPECT_TRUE(frame.value().Find("ok")->boolean());
}

TEST(GterdServerTest, PipelinedRequestsEachGetAResponse) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  ASSERT_TRUE(client
                  .SendRaw("{\"id\": 101, \"method\": \"stats\"}\n"
                           "{\"id\": 102, \"method\": \"stats\"}")
                  .ok());
  double seen = 0;
  for (int i = 0; i < 2; ++i) {
    auto frame = client.ReadResponseFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_TRUE(frame.value().Find("ok")->boolean());
    seen += frame.value().Find("id")->number();
  }
  EXPECT_EQ(seen, 203.0);  // both ids answered, in whatever order
}

TEST(GterdServerTest, OversizedFrameAnswersErrorThenCloses) {
  GterdServerOptions options;
  options.max_frame_bytes = 256;
  ServerFixture fx(options);
  GterdClient client = fx.Connect();
  ASSERT_TRUE(client.SendRaw(std::string(1024, 'a')).ok());
  auto frame = client.ReadResponseFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_FALSE(frame.value().Find("ok")->boolean());
  EXPECT_EQ(frame.value().Find("error")->Find("code")->string(),
            "InvalidArgument");
  // The stream is unframeable past this point: the server closes it.
  EXPECT_EQ(client.ReadResponseFrame().status().code(), StatusCode::kIOError);
}

TEST(GterdServerTest, OversizedFrameWithoutNewlineAlsoCloses) {
  GterdServerOptions options;
  options.max_frame_bytes = 256;
  ServerFixture fx(options);
  // Raw socket: GterdClient::SendRaw always appends the framing newline,
  // and this test is about a line that never gets one.
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.server->port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string blob(4096, 'b');
  ASSERT_EQ(send(fd, blob.data(), blob.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(blob.size()));
  // The server answers one InvalidArgument error frame, then closes.
  std::string received;
  char chunk[1024];
  while (true) {
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF: server closed after the error frame
    received.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  ASSERT_FALSE(received.empty());
  ASSERT_EQ(received.back(), '\n');
  auto frame = JsonValue::Parse(
      std::string_view(received).substr(0, received.size() - 1));
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_FALSE(frame.value().Find("ok")->boolean());
  EXPECT_EQ(frame.value().Find("error")->Find("code")->string(),
            "InvalidArgument");
}

TEST(GterdServerTest, DeadlineExpiredReturnsDeadlineExceeded) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  JsonValue params = JsonValue::MakeObject();
  params.Set("ms", JsonValue::MakeNumber(30000));
  const auto start = steady_clock::now();
  auto r = client.Call("debug_sleep", std::move(params), /*deadline_ms=*/50);
  // The request is answered (not dropped), with the deadline code, long
  // before the requested sleep would have finished.
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(SecondsSince(start), 10.0);
}

TEST(GterdServerTest, ServerDefaultDeadlineApplies) {
  GterdServerOptions options;
  options.default_deadline_ms = 50;
  ServerFixture fx(options);
  GterdClient client = fx.Connect();
  JsonValue params = JsonValue::MakeObject();
  params.Set("ms", JsonValue::MakeNumber(30000));
  auto r = client.Call("debug_sleep", std::move(params));
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(GterdServerTest, MidRequestDisconnectCancelsInFlightWork) {
  ServerFixture fx;
  const auto start = steady_clock::now();
  {
    GterdClient client = fx.Connect();
    ASSERT_TRUE(
        client
            .SendRaw(
                R"({"id": 1, "method": "debug_sleep", "params": {"ms": 60000}})")
            .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    // Client vanishes mid-request.
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // If the disconnect did not cancel the sleep, Stop() would block on the
  // worker for the remaining ~60s and the test would time out.
  fx.server->Stop();
  EXPECT_LT(SecondsSince(start), 30.0);
}

TEST(GterdServerTest, SixteenConcurrentConnectionsZeroProtocolErrors) {
  ServerFixture fx;
  constexpr int kConnections = 16;
  constexpr int kRequests = 50;
  std::atomic<int> ok{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  workers.reserve(kConnections);
  for (int c = 0; c < kConnections; ++c) {
    workers.emplace_back([&fx, &ok, &errors, c] {
      auto connected = GterdClient::Connect("127.0.0.1", fx.server->port());
      if (!connected.ok()) {
        errors += kRequests;
        return;
      }
      GterdClient client = std::move(connected).value();
      for (int i = 0; i < kRequests; ++i) {
        Result<JsonValue> r = Status::Internal("unset");
        switch ((c + i) % 3) {
          case 0:
            r = client.Call("stats", JsonValue::MakeObject());
            break;
          case 1: {
            JsonValue params = JsonValue::MakeObject();
            params.Set("a", JsonValue::MakeNumber(i % 5));
            params.Set("b", JsonValue::MakeNumber((i + 1) % 5));
            r = client.Call("pair_score", std::move(params));
            break;
          }
          default: {
            JsonValue params = JsonValue::MakeObject();
            params.Set("text",
                       JsonValue::MakeString("blue lagoon seafood grill"));
            r = client.Call("resolve", std::move(params));
            break;
          }
        }
        if (r.ok()) {
          ++ok;
        } else {
          ++errors;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(ok.load(), kConnections * kRequests);
  EXPECT_GE(fx.server->connections_accepted(), 16u);
}

// --- Serving-side observability (DESIGN.md §4c) -------------------------

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string contents;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(f);
  return contents;
}

TEST(GterdServerTest, MetricsListenerServesMetricsHealthzAndVarz) {
  GterdServerOptions options;
  options.metrics_port = 0;
  ServerFixture fx(options);
  ASSERT_NE(fx.server->metrics_port(), 0);

  auto healthz =
      GterdClient::HttpGet("127.0.0.1", fx.server->metrics_port(), "/healthz");
  ASSERT_TRUE(healthz.ok()) << healthz.status().ToString();
  EXPECT_EQ(healthz.value(), "ok\n");

  // Drive one request so the sliding histograms are populated.
  GterdClient client = fx.Connect();
  JsonValue params = JsonValue::MakeObject();
  params.Set("text", JsonValue::MakeString("golden dragon pasadena"));
  ASSERT_TRUE(client.Call("resolve", std::move(params)).ok());

  auto metrics =
      GterdClient::HttpGet("127.0.0.1", fx.server->metrics_port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics.value().find("# TYPE gter_server_uptime_s gauge"),
            std::string::npos)
      << metrics.value();
  PromParsedHistogram work_us;
  EXPECT_TRUE(FindPromHistogram(metrics.value(),
                                "gter_server_resolve_work_us", &work_us))
      << metrics.value();
  EXPECT_GE(work_us.count, 1u);

  auto varz =
      GterdClient::HttpGet("127.0.0.1", fx.server->metrics_port(), "/varz");
  ASSERT_TRUE(varz.ok()) << varz.status().ToString();
  auto varz_json = JsonValue::Parse(varz.value());
  ASSERT_TRUE(varz_json.ok()) << varz.value();
  EXPECT_NE(varz_json.value().Find("gauges"), nullptr);

  auto missing =
      GterdClient::HttpGet("127.0.0.1", fx.server->metrics_port(), "/nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("404"), std::string::npos)
      << missing.status().ToString();
}

TEST(GterdServerTest, MetricsListenerRejectsNonGet) {
  GterdServerOptions options;
  options.metrics_port = 0;
  ServerFixture fx(options);
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.server->metrics_port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "POST /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[1024];
  while (true) {
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  EXPECT_NE(response.find("405"), std::string::npos) << response;
}

TEST(GterdServerTest, EightConcurrentScrapersDuringNdjsonTraffic) {
  GterdServerOptions options;
  options.metrics_port = 0;
  ServerFixture fx(options);
  constexpr int kScrapers = 8;
  constexpr int kScrapes = 20;
  std::atomic<int> scrape_errors{0};
  std::atomic<bool> stop_traffic{false};

  // NDJSON traffic in the background while scrapers hammer /metrics.
  std::thread traffic([&] {
    auto connected = GterdClient::Connect("127.0.0.1", fx.server->port());
    if (!connected.ok()) return;
    GterdClient client = std::move(connected).value();
    while (!stop_traffic.load(std::memory_order_relaxed)) {
      JsonValue params = JsonValue::MakeObject();
      params.Set("text", JsonValue::MakeString("blue lagoon seafood"));
      if (!client.Call("resolve", std::move(params)).ok()) break;
    }
  });

  std::vector<std::thread> scrapers;
  for (int s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([&fx, &scrape_errors, s] {
      for (int i = 0; i < kScrapes; ++i) {
        const char* path = (s + i) % 2 == 0 ? "/metrics" : "/healthz";
        auto got =
            GterdClient::HttpGet("127.0.0.1", fx.server->metrics_port(), path);
        if (!got.ok() || got.value().empty()) ++scrape_errors;
      }
    });
  }
  for (auto& t : scrapers) t.join();
  stop_traffic.store(true, std::memory_order_relaxed);
  traffic.join();
  EXPECT_EQ(scrape_errors.load(), 0);

  // A final scrape parses and carries the traffic's histograms.
  auto metrics =
      GterdClient::HttpGet("127.0.0.1", fx.server->metrics_port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  PromParsedHistogram work_us;
  EXPECT_TRUE(FindPromHistogram(metrics.value(),
                                "gter_server_resolve_work_us", &work_us));
  EXPECT_GE(work_us.count, 1u);
}

TEST(GterdServerTest, AccessLogHasOneLinePerRequestWithUniqueIds) {
  GterdServerOptions options;
  options.access_log_path =
      ::testing::TempDir() + "/gterd_access_log_test.ndjson";
  std::remove(options.access_log_path.c_str());
  ServerFixture fx(options);
  GterdClient client = fx.Connect();

  constexpr int kResolves = 5;
  for (int i = 0; i < kResolves; ++i) {
    JsonValue params = JsonValue::MakeObject();
    params.Set("text", JsonValue::MakeString("taco fiesta cantina"));
    params.Set("clusterer", JsonValue::MakeString("connected_components"));
    ASSERT_TRUE(client.Call("resolve", std::move(params), 5000).ok());
  }
  ASSERT_TRUE(client.Call("stats", JsonValue::MakeObject()).ok());
  // Errors are logged too.
  EXPECT_FALSE(client.Call("frobnicate", JsonValue::MakeObject()).ok());
  constexpr int kTotal = kResolves + 2;

  // Every response implies its log line was already written and flushed.
  const std::string log = ReadWholeFile(options.access_log_path);
  std::set<uint64_t> ids;
  std::set<std::string> methods;
  int lines = 0;
  size_t pos = 0;
  while (pos < log.size()) {
    const size_t eol = log.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated line";
    const std::string line = log.substr(pos, eol - pos);
    pos = eol + 1;
    ++lines;
    auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const JsonValue& entry = parsed.value();
    ids.insert(static_cast<uint64_t>(entry.NumberOr("request_id", 0)));
    methods.insert(entry.Find("method")->string());
    EXPECT_GE(entry.NumberOr("work_us", -1.0), 0.0) << line;
    EXPECT_GE(entry.NumberOr("queue_us", -1.0), 0.0) << line;
    EXPECT_GT(entry.NumberOr("bytes_in", 0.0), 0.0) << line;
    EXPECT_GT(entry.NumberOr("bytes_out", 0.0), 0.0) << line;
    const std::string status = entry.Find("status")->string();
    const std::string method = entry.Find("method")->string();
    if (method == "frobnicate") {
      EXPECT_EQ(status, "NotFound") << line;
    } else {
      EXPECT_EQ(status, "OK") << line;
    }
    if (method == "resolve") {
      EXPECT_EQ(entry.Find("clusterer")->string(), "connected_components") << line;
      EXPECT_EQ(entry.NumberOr("deadline_ms", 0.0), 5000.0) << line;
      EXPECT_NE(entry.Find("slack_ms"), nullptr) << line;
    }
  }
  EXPECT_EQ(lines, kTotal);
  EXPECT_EQ(ids.size(), static_cast<size_t>(kTotal));  // ids are unique
  EXPECT_EQ(methods.size(), 3u);  // resolve, stats, frobnicate
  std::remove(options.access_log_path.c_str());
}

TEST(GterdServerTest, StatsServesUptimeAndLivePercentiles) {
  ServerFixture fx;
  GterdClient client = fx.Connect();
  for (int i = 0; i < 3; ++i) {
    JsonValue params = JsonValue::MakeObject();
    params.Set("text", JsonValue::MakeString("golden dragon"));
    ASSERT_TRUE(client.Call("resolve", std::move(params)).ok());
  }
  auto stats = client.Call("stats", JsonValue::MakeObject());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.value().NumberOr("uptime_s", -1.0), 0.0);
  const JsonValue* live = stats.value().Find("live");
  ASSERT_NE(live, nullptr);
  const JsonValue* resolve = live->Find("resolve");
  ASSERT_NE(resolve, nullptr) << stats.value().Serialize();
  EXPECT_GE(resolve->NumberOr("count", 0.0), 3.0);
  const JsonValue* work = resolve->Find("work_us");
  ASSERT_NE(work, nullptr);
  EXPECT_GT(work->NumberOr("p50", -1.0), 0.0);
  EXPECT_GE(work->NumberOr("p99", 0.0), work->NumberOr("p50", 0.0));
  EXPECT_NE(resolve->Find("queue_us"), nullptr);
}

TEST(GterdServerTest, DebugSlowCapturesSlowRequestsWithSpans) {
  GterdServerOptions options;
  options.slow_request_ms = 20;
  ServerFixture fx(options);
  GterdClient client = fx.Connect();

  // A fast request must not land in the ring.
  ASSERT_TRUE(client.Call("stats", JsonValue::MakeObject()).ok());
  auto empty = client.Call("debug_slow", JsonValue::MakeObject());
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_EQ(empty.value().NumberOr("threshold_ms", -1.0), 20.0);
  EXPECT_EQ(empty.value().Find("slow")->array().size(), 0u);

  // debug_sleep(60ms) trips the 20ms threshold.
  JsonValue params = JsonValue::MakeObject();
  params.Set("ms", JsonValue::MakeNumber(60));
  ASSERT_TRUE(client.Call("debug_sleep", std::move(params)).ok());

  auto dump = client.Call("debug_slow", JsonValue::MakeObject());
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  const JsonValue* slow = dump.value().Find("slow");
  ASSERT_NE(slow, nullptr);
  ASSERT_EQ(slow->array().size(), 1u) << dump.value().Serialize();
  const JsonValue& rec = slow->array()[0];
  EXPECT_EQ(rec.Find("method")->string(), "debug_sleep");
  EXPECT_EQ(rec.Find("status")->string(), "OK");
  EXPECT_GE(rec.NumberOr("work_us", 0.0), 20000.0);
  const JsonValue* spans = rec.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_GE(spans->array().size(), 1u) << dump.value().Serialize();
  // The handler's stage span is among them, with a plausible duration.
  bool saw_handler = false;
  for (const JsonValue& span : spans->array()) {
    if (span.Find("name")->string() == "server/debug_sleep") {
      saw_handler = true;
      EXPECT_GE(span.NumberOr("dur_us", 0.0), 20000.0);
    }
  }
  EXPECT_TRUE(saw_handler) << dump.value().Serialize();
}

TEST(GterdServerTest, StopWithIdleConnectionsDoesNotHang) {
  ServerFixture fx;
  GterdClient a = fx.Connect();
  GterdClient b = fx.Connect();
  auto warm = a.Call("stats", JsonValue::MakeObject());
  ASSERT_TRUE(warm.ok());
  fx.server->Stop();
  // The open sockets observe the shutdown as EOF.
  EXPECT_EQ(b.Call("stats", JsonValue::MakeObject()).status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace gter
