// Prometheus text-exposition writer tests (DESIGN.md §4c).
//
// The centerpiece is an in-test exposition validator: every sample line
// must carry a valid metric name, every family must be announced by
// `# HELP` then `# TYPE` before its first sample, histogram buckets must
// be cumulative, ascending in `le`, and end in a `+Inf` bucket equal to
// the `_count` series. Running it over a fully-populated registry means a
// malformed render fails here, not in a scraping Prometheus.

#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gter/common/metrics.h"
#include "gter/common/prom.h"

namespace gter {
namespace {

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto ok_first = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  auto ok_rest = [&](char c) { return ok_first(c) || (c >= '0' && c <= '9'); };
  if (!ok_first(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!ok_rest(c)) return false;
  }
  return true;
}

/// Validates the whole exposition text; on failure returns false and
/// stores a diagnostic into `*error`.
bool ValidateExposition(const std::string& text, std::string* error) {
  auto fail = [&](const std::string& message) {
    *error = message;
    return false;
  };

  // Family name -> declared type; insertion also checks HELP-before-TYPE.
  std::map<std::string, std::string> family_type;
  std::string pending_help;  // family name of the last unmatched # HELP
  struct HistogramSeries {
    std::vector<std::pair<double, uint64_t>> buckets;
    bool saw_sum = false;
    bool saw_count = false;
    uint64_t count = 0;
  };
  std::map<std::string, HistogramSeries> histograms;

  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) return fail("missing trailing newline");
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) return fail("blank line");

    if (line.rfind("# HELP ", 0) == 0) {
      const size_t name_end = line.find(' ', 7);
      if (name_end == std::string::npos) return fail("bad HELP: " + line);
      pending_help = line.substr(7, name_end - 7);
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t name_end = line.find(' ', 7);
      if (name_end == std::string::npos) return fail("bad TYPE: " + line);
      const std::string name = line.substr(7, name_end - 7);
      const std::string type = line.substr(name_end + 1);
      if (name != pending_help) {
        return fail("TYPE for " + name + " not preceded by its HELP");
      }
      pending_help.clear();
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return fail("unknown type '" + type + "' for " + name);
      }
      if (!family_type.emplace(name, type).second) {
        return fail("family " + name + " declared twice");
      }
      continue;
    }
    if (line[0] == '#') continue;  // other comments (rename NOTEs) are free

    // Sample line: <name>[{labels}] <value>
    const size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) return fail("bad sample: " + line);
    const std::string series = line.substr(0, name_end);
    if (!IsValidMetricName(series)) {
      return fail("invalid metric name '" + series + "'");
    }
    const size_t value_start = line.rfind(' ');
    const std::string value_text = line.substr(value_start + 1);
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() && value_text != "+Inf" &&
        value_text != "-Inf" && value_text != "NaN") {
      return fail("unparseable value in: " + line);
    }

    // Resolve the series back to its family: exact for counters/gauges,
    // a _bucket/_sum/_count suffix for histograms.
    std::string family = series;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (series.size() > s.size() &&
          series.compare(series.size() - s.size(), s.size(), s) == 0) {
        const std::string base = series.substr(0, series.size() - s.size());
        auto it = family_type.find(base);
        if (it != family_type.end() && it->second == "histogram") {
          family = base;
        }
        break;
      }
    }
    auto family_it = family_type.find(family);
    if (family_it == family_type.end()) {
      return fail("sample " + series + " before its TYPE");
    }

    if (family_it->second == "histogram") {
      HistogramSeries& h = histograms[family];
      if (series == family + "_sum") {
        h.saw_sum = true;
      } else if (series == family + "_count") {
        h.saw_count = true;
        h.count = static_cast<uint64_t>(value);
      } else if (series == family + "_bucket") {
        const std::string le_prefix = "{le=\"";
        if (line.compare(name_end, le_prefix.size(), le_prefix) != 0) {
          return fail("bucket without le label: " + line);
        }
        const size_t le_start = name_end + le_prefix.size();
        const size_t le_end = line.find("\"}", le_start);
        if (le_end == std::string::npos) return fail("bad bucket: " + line);
        const std::string le_text = line.substr(le_start, le_end - le_start);
        const double le =
            le_text == "+Inf" ? std::numeric_limits<double>::infinity()
                              : std::strtod(le_text.c_str(), nullptr);
        h.buckets.emplace_back(le, static_cast<uint64_t>(value));
      } else {
        return fail("unexpected histogram series: " + series);
      }
    }
  }

  for (const auto& [family, h] : histograms) {
    if (!h.saw_sum) return fail(family + " missing _sum");
    if (!h.saw_count) return fail(family + " missing _count");
    if (h.buckets.empty() || !std::isinf(h.buckets.back().first)) {
      return fail(family + " missing +Inf bucket");
    }
    if (h.buckets.back().second != h.count) {
      return fail(family + " +Inf bucket != _count");
    }
    for (size_t i = 1; i < h.buckets.size(); ++i) {
      if (!(h.buckets[i - 1].first < h.buckets[i].first)) {
        return fail(family + " buckets not ascending in le");
      }
      if (h.buckets[i - 1].second > h.buckets[i].second) {
        return fail(family + " buckets not cumulative");
      }
    }
  }
  return true;
}

TEST(PromSanitizeName, MapsSlugsToValidNames) {
  EXPECT_EQ(PromSanitizeName("server/resolve/work_us"),
            "server_resolve_work_us");
  EXPECT_EQ(PromSanitizeName("iter/sweeps"), "iter_sweeps");
  EXPECT_EQ(PromSanitizeName("already_fine:x"), "already_fine:x");
  EXPECT_EQ(PromSanitizeName("weird name-v1.2"), "weird_name_v1_2");
  EXPECT_EQ(PromSanitizeName("9starts_with_digit"), "_9starts_with_digit");
  EXPECT_TRUE(IsValidMetricName(PromSanitizeName("...///!!!")));
}

TEST(RenderPrometheusText, FullyPopulatedRegistryValidates) {
  MetricsRegistry registry;
  registry.AddCounter("iter/sweeps", 42);
  registry.DeclareCounter("rss/walks_run");  // zero-valued still renders
  registry.SetGauge("cliquerank/scratch_bytes", 1.5e6);
  registry.SetGauge("server/uptime_s", 12.25);
  registry.RecordTime("fusion/total", 0.5);
  registry.RecordTime("fusion/total", 0.25);
  for (int i = 0; i < 100; ++i) {
    registry.Observe("iter/convergence_delta", 0.001 * (i + 1));
    registry.Sliding("server/resolve/work_us")->Record(100.0 + i);
  }

  const std::string text = RenderPrometheusText(registry);
  std::string error;
  EXPECT_TRUE(ValidateExposition(text, &error)) << error << "\n" << text;

  // Spot-check each section's rendering.
  EXPECT_NE(text.find("# TYPE gter_iter_sweeps counter\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gter_iter_sweeps 42\n"), std::string::npos);
  EXPECT_NE(text.find("gter_rss_walks_run 0\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gter_server_uptime_s gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("gter_server_uptime_s 12.25\n"), std::string::npos);
  // Timers: two counter families.
  EXPECT_NE(text.find("gter_fusion_total_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gter_fusion_total_seconds_total counter\n"),
            std::string::npos);
  // Histograms, plain and sliding.
  EXPECT_NE(text.find("# TYPE gter_iter_convergence_delta histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("gter_server_resolve_work_us_count 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("gter_server_resolve_work_us_bucket{le=\"+Inf\"} 100\n"),
            std::string::npos);
}

TEST(RenderPrometheusText, EmptyRegistryRendersEmpty) {
  MetricsRegistry registry;
  std::string error;
  EXPECT_TRUE(ValidateExposition(RenderPrometheusText(registry), &error))
      << error;
  EXPECT_EQ(RenderPrometheusText(registry), "");
}

TEST(RenderPrometheusText, CollisionGetsRenamedNotDropped) {
  // Two distinct slugs that sanitize to the same name: both must render,
  // the second under a numeric suffix with an explanatory comment, and
  // the result must still validate.
  MetricsRegistry registry;
  registry.AddCounter("x/y", 1);
  registry.AddCounter("x_y", 2);
  const std::string text = RenderPrometheusText(registry);
  std::string error;
  EXPECT_TRUE(ValidateExposition(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("gter_x_y 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("gter_x_y_2 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# NOTE gter_x_y_2 renamed from gter_x_y"),
            std::string::npos);
}

TEST(RenderPrometheusText, HistogramDerivedNamesAreReserved) {
  // A counter slug that sanitizes onto a histogram's derived _count
  // series must be renamed rather than corrupting the histogram family.
  MetricsRegistry registry;
  registry.Observe("h/x", 1.0);
  registry.AddCounter("h/x_count", 7);
  const std::string text = RenderPrometheusText(registry);
  std::string error;
  EXPECT_TRUE(ValidateExposition(text, &error)) << error << "\n" << text;
  // The histogram's own _count appears exactly once with value 1.
  EXPECT_NE(text.find("gter_h_x_count 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("gter_h_x_count_2 7\n"), std::string::npos) << text;
}

TEST(FindPromHistogram, RoundTripsThroughExposition) {
  MetricsRegistry registry;
  for (int i = 0; i < 1000; ++i) {
    registry.Sliding("server/resolve/work_us")
        ->Record(static_cast<double>(i % 700 + 1));
  }
  const std::string text = RenderPrometheusText(registry);

  PromParsedHistogram parsed;
  ASSERT_TRUE(
      FindPromHistogram(text, "gter_server_resolve_work_us", &parsed));
  EXPECT_EQ(parsed.count, 1000u);
  EXPECT_GT(parsed.sum, 0.0);
  ASSERT_FALSE(parsed.cumulative.empty());
  EXPECT_TRUE(std::isinf(parsed.cumulative.back().first));
  EXPECT_EQ(parsed.cumulative.back().second, 1000u);

  // The scrape-side quantile estimate must agree with the registry-side
  // one to within one bucket's width (the scrape lacks the min/max
  // envelope, so exact equality is not expected).
  const Histogram direct =
      registry.SlidingSnapshot("server/resolve/work_us");
  for (double q : {0.5, 0.95, 0.99}) {
    const double scraped = PromHistogramQuantile(parsed, q);
    const double exact = direct.Quantile(q);
    EXPECT_GE(scraped, exact / 2.0) << q;
    EXPECT_LE(scraped, exact * 2.0) << q;
  }

  PromParsedHistogram absent;
  EXPECT_FALSE(FindPromHistogram(text, "gter_no_such_family", &absent));
}

TEST(PromHistogramQuantile, InterpolatesAndHandlesEdges) {
  PromParsedHistogram h;
  h.cumulative = {{1.0, 10}, {2.0, 20},
                  {std::numeric_limits<double>::infinity(), 20}};
  h.count = 20;
  h.sum = 25.0;
  // Median: 10 of 20 observations are ≤ 1.0.
  EXPECT_DOUBLE_EQ(PromHistogramQuantile(h, 0.5), 1.0);
  // Three quarters: half-way through the (1, 2] bucket.
  EXPECT_DOUBLE_EQ(PromHistogramQuantile(h, 0.75), 1.5);
  // Into the +Inf tail: the last finite bound is the best estimate.
  PromParsedHistogram tail;
  tail.cumulative = {{1.0, 10},
                     {std::numeric_limits<double>::infinity(), 12}};
  tail.count = 12;
  EXPECT_DOUBLE_EQ(PromHistogramQuantile(tail, 0.99), 1.0);
  EXPECT_DOUBLE_EQ(PromHistogramQuantile(PromParsedHistogram{}, 0.5), 0.0);
}

}  // namespace
}  // namespace gter
