#include "gter/server/protocol.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(ProtocolTest, ParsesMinimalRequest) {
  auto r = ParseGterdRequest(R"({"method": "stats"})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().method, "stats");
  EXPECT_TRUE(r.value().id.is_null());
  EXPECT_TRUE(r.value().params.is_object());
  EXPECT_TRUE(r.value().params.object().empty());
  EXPECT_EQ(r.value().deadline_ms, 0);
}

TEST(ProtocolTest, ParsesFullRequest) {
  auto r = ParseGterdRequest(
      R"({"id": 7, "method": "resolve", "params": {"text": "x"},)"
      R"( "deadline_ms": 250})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().id.number(), 7.0);
  EXPECT_EQ(r.value().method, "resolve");
  EXPECT_EQ(r.value().params.Find("text")->string(), "x");
  EXPECT_EQ(r.value().deadline_ms, 250);
}

TEST(ProtocolTest, IdMayBeAnyJsonValue) {
  auto r = ParseGterdRequest(R"({"id": "abc-123", "method": "stats"})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().id.string(), "abc-123");
}

TEST(ProtocolTest, RejectsMalformedJson) {
  EXPECT_EQ(ParseGterdRequest("{nope").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseGterdRequest("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, RejectsNonObjectFrame) {
  EXPECT_FALSE(ParseGterdRequest("42").ok());
  EXPECT_FALSE(ParseGterdRequest("[1,2]").ok());
  EXPECT_FALSE(ParseGterdRequest("\"stats\"").ok());
}

TEST(ProtocolTest, RejectsMissingOrNonStringMethod) {
  EXPECT_FALSE(ParseGterdRequest(R"({"id": 1})").ok());
  EXPECT_FALSE(ParseGterdRequest(R"({"method": 5})").ok());
}

TEST(ProtocolTest, RejectsNonObjectParams) {
  EXPECT_FALSE(ParseGterdRequest(R"({"method": "m", "params": [1]})").ok());
}

TEST(ProtocolTest, RejectsBadDeadline) {
  EXPECT_FALSE(
      ParseGterdRequest(R"({"method": "m", "deadline_ms": -5})").ok());
  EXPECT_FALSE(
      ParseGterdRequest(R"({"method": "m", "deadline_ms": 1.5})").ok());
  EXPECT_FALSE(
      ParseGterdRequest(R"({"method": "m", "deadline_ms": "soon"})").ok());
}

TEST(ProtocolTest, ResponseFramesAreNewlineTerminatedSingleLines) {
  JsonValue result = JsonValue::MakeObject();
  result.Set("x", JsonValue::MakeString("line1\nline2"));
  std::string frame =
      FormatGterdResponse(JsonValue::MakeNumber(3), std::move(result));
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame.back(), '\n');
  // The embedded newline must be escaped: exactly one framing newline.
  EXPECT_EQ(frame.find('\n'), frame.size() - 1);

  auto parsed = JsonValue::Parse(frame);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Find("id")->number(), 3.0);
  EXPECT_TRUE(parsed.value().Find("ok")->boolean());
  EXPECT_EQ(parsed.value().Find("result")->Find("x")->string(),
            "line1\nline2");
}

TEST(ProtocolTest, ErrorFrameCarriesStableCodeName) {
  std::string frame = FormatGterdError(
      JsonValue::MakeNull(), Status::DeadlineExceeded("too slow"));
  auto parsed = JsonValue::Parse(frame);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().Find("ok")->boolean());
  EXPECT_TRUE(parsed.value().Find("id")->is_null());
  const JsonValue* error = parsed.value().Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->string(), "DeadlineExceeded");
  EXPECT_EQ(error->Find("message")->string(), "too slow");
}

}  // namespace
}  // namespace gter
