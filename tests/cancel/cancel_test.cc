// Cancellation contract of the refactored pipeline (DESIGN.md §4e):
//
//  1. Property sweep: for EVERY stage entry point and ANY cancel point k
//     (CancelAfterPolls trips the token on the (k+1)-th poll), the run
//     either finishes cleanly or unwinds with Cancelled — never crashes,
//     never returns a third status, serial and pooled alike. k = 0 must
//     always cancel (every stage polls at entry).
//  2. Deadlines: an expired deadline surfaces as DeadlineExceeded from the
//     full pipeline; a far-future deadline changes nothing — the run is
//     bitwise identical to an uncancellable one.
//  3. Cancel-then-rerun: a cancelled run leaves no residue — rerunning
//     with the Reset token reproduces the baseline byte for byte.
//  4. Thread differential: the full pipeline is bitwise identical with no
//     pool, a 1-thread pool, and an 8-thread pool (the determinism half of
//     the ExecContext contract).

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gter/common/exec_context.h"
#include "gter/common/random.h"
#include "gter/common/thread_pool.h"
#include "gter/core/clusterer.h"
#include "gter/core/correlation_clustering.h"
#include "gter/core/fusion.h"
#include "gter/core/iter_matrix.h"
#include "gter/datagen/datagen.h"
#include "gter/er/blocking.h"
#include "gter/er/preprocess.h"

namespace gter {
namespace {

/// One small benchmark world shared by every harness: a preprocessed
/// Restaurant dataset plus the derived pair space, bipartite graph, and
/// similarity-weighted record graph.
struct CancelWorld {
  GeneratedDataset data = MakeData();
  PairSpace pairs = PairSpace::Build(data.dataset);
  BipartiteGraph bipartite = BipartiteGraph::Build(data.dataset, pairs);
  std::vector<double> uniform = std::vector<double>(pairs.size(), 1.0);
  RecordGraph graph = RecordGraph::Build(
      data.dataset.size(), pairs,
      RunIter(bipartite, uniform).value().pair_scores);
  // Varied edge weights for the clustering endgames: at η = 0.5 about half
  // the edges are eligible, so every endgame's merge/matching loop runs.
  std::vector<double> varied = MakeVaried(pairs.size());

  static GeneratedDataset MakeData() {
    auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.15, 3);
    RemoveFrequentTerms(&data.dataset);
    return data;
  }

  static std::vector<double> MakeVaried(size_t n) {
    Rng rng(17);
    std::vector<double> out(n);
    for (double& p : out) p = rng.UniformDouble();
    return out;
  }

  ClusterProblem Problem() const {
    ClusterProblem problem;
    problem.num_records = data.dataset.size();
    problem.pairs = &pairs;
    problem.pair_probability = &varied;
    problem.eta = 0.5;
    return problem;
  }
};

FusionConfig SmallConfig() {
  FusionConfig config;
  config.rounds = 3;
  config.cliquerank.max_steps = 10;
  return config;
}

/// Every cancellable entry point, as a uniform Status-returning closure.
using StageFn = std::function<Status(const ExecContext&)>;

std::vector<std::pair<std::string, StageFn>> Stages(const CancelWorld& w) {
  std::vector<std::pair<std::string, StageFn>> stages;
  stages.emplace_back("iter", [&w](const ExecContext& ctx) {
    return RunIter(w.bipartite, w.uniform, {}, ctx).status();
  });
  stages.emplace_back("iter_matrix", [&w](const ExecContext& ctx) {
    return RunIterMatrixForm(w.bipartite, w.uniform, {}, ctx).status();
  });
  stages.emplace_back("rss", [&w](const ExecContext& ctx) {
    RssOptions options;
    options.num_walks = 20;
    options.max_steps = 5;
    return RunRss(w.graph, w.pairs, options, ctx).status();
  });
  stages.emplace_back("cliquerank_dense", [&w](const ExecContext& ctx) {
    CliqueRankOptions options;
    options.engine = CliqueRankEngine::kDense;
    options.max_steps = 10;
    return RunCliqueRank(w.graph, w.pairs, options, ctx).status();
  });
  stages.emplace_back("cliquerank_masked", [&w](const ExecContext& ctx) {
    CliqueRankOptions options;
    options.engine = CliqueRankEngine::kMaskedSparse;
    options.max_steps = 10;
    return RunCliqueRank(w.graph, w.pairs, options, ctx).status();
  });
  stages.emplace_back("clustering", [&w](const ExecContext& ctx) {
    std::vector<double> probability(w.pairs.size(), 0.4);
    return CorrelationCluster(w.data.dataset.size(), w.pairs, probability, {},
                              ctx)
        .status();
  });
  // Every registered clustering endgame is a cancellable entry point of
  // its own (the Clusterer contract, DESIGN.md §4f).
  for (ClustererKind kind : AllClustererKinds()) {
    stages.emplace_back(std::string("cluster_") + ClustererKindName(kind),
                        [&w, kind](const ExecContext& ctx) {
                          return MakeClusterer(kind)
                              ->Cluster(w.Problem(), ctx)
                              .status();
                        });
  }
  stages.emplace_back("lsh_blocking", [&w](const ExecContext& ctx) {
    return LshBlocking(w.data.dataset, {}, ctx).status();
  });
  stages.emplace_back("canopy_blocking", [&w](const ExecContext& ctx) {
    return CanopyBlocking(w.data.dataset, {}, ctx).status();
  });
  stages.emplace_back("fusion", [&w](const ExecContext& ctx) {
    FusionPipeline pipeline(w.data.dataset, SmallConfig());
    return pipeline.Run(ctx).status();
  });
  return stages;
}

TEST(CancelPropertyTest, AnyCancelPointYieldsOkOrCancellation) {
  CancelWorld w;
  ThreadPool pool(4);
  Rng rng(2026);
  for (const auto& [name, fn] : Stages(w)) {
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      CancelToken token;
      ExecContext ctx;
      ctx.pool = p;
      ctx.cancel = &token;

      // k = 0: the entry poll trips — every stage must refuse to start.
      token.CancelAfterPolls(0);
      Status immediate = fn(ctx);
      ASSERT_FALSE(immediate.ok()) << name << " pool=" << (p != nullptr);
      EXPECT_TRUE(IsCancellation(immediate))
          << name << ": " << immediate.ToString();

      // Random later cancel points: the only legal outcomes are a clean
      // finish (the run used fewer than k polls) or a clean cancellation.
      for (int trial = 0; trial < 6; ++trial) {
        const int64_t k = static_cast<int64_t>(rng.NextBounded(300));
        token.Reset();
        token.CancelAfterPolls(k);
        Status status = fn(ctx);
        EXPECT_TRUE(status.ok() || IsCancellation(status))
            << name << " k=" << k << " pool=" << (p != nullptr) << ": "
            << status.ToString();
      }
    }
  }
}

TEST(CancelDeadlineTest, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
  CancelWorld w;
  CancelToken token;
  token.SetTimeout(-1.0);  // already expired when the run starts
  FusionPipeline pipeline(w.data.dataset, SmallConfig());
  Result<FusionResult> run = pipeline.Run(ExecContext::WithCancel(&token));
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelDeadlineTest, FarFutureDeadlineLeavesTheRunBitIdentical) {
  CancelWorld w;
  FusionResult baseline =
      FusionPipeline(w.data.dataset, SmallConfig()).Run().value();
  CancelToken token;
  token.SetTimeout(3600.0);
  FusionResult timed = FusionPipeline(w.data.dataset, SmallConfig())
                           .Run(ExecContext::WithCancel(&token))
                           .value();
  EXPECT_EQ(baseline.term_weights, timed.term_weights);
  EXPECT_EQ(baseline.pair_scores, timed.pair_scores);
  EXPECT_EQ(baseline.pair_probability, timed.pair_probability);
  EXPECT_EQ(baseline.matches, timed.matches);
}

TEST(CancelRerunTest, CancelThenRerunReproducesTheBaseline) {
  CancelWorld w;
  FusionResult baseline =
      FusionPipeline(w.data.dataset, SmallConfig()).Run().value();

  CancelToken token;
  token.CancelAfterPolls(5);  // deep enough to start, early enough to trip
  FusionPipeline cancelled_pipeline(w.data.dataset, SmallConfig());
  Result<FusionResult> cancelled =
      cancelled_pipeline.Run(ExecContext::WithCancel(&token));
  ASSERT_FALSE(cancelled.ok());
  ASSERT_TRUE(IsCancellation(cancelled.status()));
  // The anytime contract: whatever the cancelled run did finish is exposed
  // with consistent shapes.
  const FusionResult& partial = cancelled_pipeline.partial();
  for (size_t size : {partial.pair_scores.size(),
                      partial.pair_probability.size()}) {
    EXPECT_TRUE(size == 0 || size == w.pairs.size());
  }

  token.Reset();
  FusionResult rerun = FusionPipeline(w.data.dataset, SmallConfig())
                           .Run(ExecContext::WithCancel(&token))
                           .value();
  EXPECT_EQ(baseline.term_weights, rerun.term_weights);
  EXPECT_EQ(baseline.pair_scores, rerun.pair_scores);
  EXPECT_EQ(baseline.pair_probability, rerun.pair_probability);
  EXPECT_EQ(baseline.matches, rerun.matches);
}

TEST(CancelRerunTest, ClusterersAreDeterministicAfterACancelledAttempt) {
  // Per-endgame cancel-then-rerun: a k = 0 attempt must cancel (entry
  // poll), and rerunning with the reset token reproduces an uncancelled
  // baseline exactly — no endgame keeps state across attempts.
  CancelWorld w;
  for (ClustererKind kind : AllClustererKinds()) {
    SCOPED_TRACE(ClustererKindName(kind));
    std::unique_ptr<Clusterer> clusterer = MakeClusterer(kind);
    Clustering baseline = clusterer->Cluster(w.Problem()).value();

    CancelToken token;
    token.CancelAfterPolls(0);
    ExecContext ctx = ExecContext::WithCancel(&token);
    Result<Clustering> cancelled = clusterer->Cluster(w.Problem(), ctx);
    ASSERT_FALSE(cancelled.ok());
    EXPECT_TRUE(IsCancellation(cancelled.status()))
        << cancelled.status().ToString();

    token.Reset();
    Clustering rerun = clusterer->Cluster(w.Problem(), ctx).value();
    EXPECT_EQ(baseline.cluster_of, rerun.cluster_of);
    EXPECT_EQ(baseline.num_clusters, rerun.num_clusters);

    // A mid-run trip must also leave no residue.
    token.Reset();
    token.CancelAfterPolls(2);
    Result<Clustering> mid = clusterer->Cluster(w.Problem(), ctx);
    if (mid.ok()) {
      EXPECT_EQ(baseline.cluster_of, mid.value().cluster_of);
    } else {
      EXPECT_TRUE(IsCancellation(mid.status()));
    }
    token.Reset();
    Clustering again = clusterer->Cluster(w.Problem(), ctx).value();
    EXPECT_EQ(baseline.cluster_of, again.cluster_of);
  }
}

TEST(FusionThreadDifferentialTest, PipelineIsBitIdenticalAcrossThreadCounts) {
  CancelWorld w;
  FusionResult serial =
      FusionPipeline(w.data.dataset, SmallConfig()).Run().value();
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  FusionResult one = FusionPipeline(w.data.dataset, SmallConfig())
                         .Run(ExecContext::WithPool(&pool1))
                         .value();
  FusionResult eight = FusionPipeline(w.data.dataset, SmallConfig())
                           .Run(ExecContext::WithPool(&pool8))
                           .value();
  EXPECT_EQ(serial.term_weights, one.term_weights);
  EXPECT_EQ(serial.pair_scores, one.pair_scores);
  EXPECT_EQ(serial.pair_probability, one.pair_probability);
  EXPECT_EQ(serial.matches, one.matches);
  EXPECT_EQ(serial.term_weights, eight.term_weights);
  EXPECT_EQ(serial.pair_scores, eight.pair_scores);
  EXPECT_EQ(serial.pair_probability, eight.pair_probability);
  EXPECT_EQ(serial.matches, eight.matches);
  // The clustering endgame inherits the determinism contract.
  EXPECT_EQ(serial.cluster_of, one.cluster_of);
  EXPECT_EQ(serial.cluster_of, eight.cluster_of);
  EXPECT_EQ(serial.num_clusters, eight.num_clusters);
}

}  // namespace
}  // namespace gter
