#include "gter/datagen/datagen.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "gter/datagen/paper_gen.h"
#include "gter/datagen/product_gen.h"
#include "gter/datagen/restaurant_gen.h"
#include "gter/er/pair_space.h"
#include "gter/er/preprocess.h"

namespace gter {
namespace {

TEST(RestaurantGenTest, MatchesPublishedStatistics) {
  auto data = GenerateRestaurant();
  EXPECT_EQ(data.dataset.size(), 858u);
  EXPECT_EQ(data.dataset.num_sources(), 1u);
  EXPECT_EQ(data.truth.CountMatchingPairs(), 106u);
  // Restaurant clusters are at most pairs.
  auto hist = data.truth.ClusterSizeHistogram();
  EXPECT_EQ(hist.size(), 3u);  // sizes 1 and 2 only
  EXPECT_EQ(hist[2], 106u);
}

TEST(RestaurantGenTest, RecordsHaveFiveFields) {
  auto data = GenerateRestaurant();
  for (const Record& rec : data.dataset.records()) {
    EXPECT_EQ(rec.fields.size(), 5u);
    EXPECT_FALSE(rec.raw_text.empty());
  }
}

TEST(RestaurantGenTest, DuplicatesSharePhone) {
  auto data = GenerateRestaurant();
  size_t shared_phone = 0, dup_pairs = 0;
  for (const auto& cluster : data.truth.clusters()) {
    if (cluster.size() != 2) continue;
    ++dup_pairs;
    const auto& f0 = data.dataset.record(cluster[0]).fields;
    const auto& f1 = data.dataset.record(cluster[1]).fields;
    if (f0[3] == f1[3]) ++shared_phone;
  }
  // The phone is the stable anchor; a small fraction is typo'd by design.
  EXPECT_GT(shared_phone, dup_pairs * 85 / 100);
}

TEST(ProductGenTest, MatchesPublishedStatistics) {
  auto data = GenerateProduct();
  EXPECT_EQ(data.dataset.num_sources(), 2u);
  size_t s0 = 0, s1 = 0;
  for (const Record& rec : data.dataset.records()) {
    (rec.source == 0 ? s0 : s1) += 1;
  }
  EXPECT_EQ(s0, 1081u);
  EXPECT_EQ(s1, 1092u);
  std::vector<uint32_t> sources;
  for (const Record& rec : data.dataset.records()) sources.push_back(rec.source);
  EXPECT_EQ(data.truth.CountMatchingCrossPairs(sources), 1092u);
}

TEST(ProductGenTest, NoSameSourceDuplicateOnAbtSide) {
  auto data = GenerateProduct();
  for (const auto& cluster : data.truth.clusters()) {
    size_t abt = 0;
    for (RecordId r : cluster) {
      if (data.dataset.record(r).source == 0) ++abt;
    }
    EXPECT_LE(abt, 1u);
  }
}

TEST(PaperGenTest, MatchesPublishedStatistics) {
  auto data = GeneratePaper();
  EXPECT_EQ(data.dataset.size(), 1865u);
  auto hist = data.truth.ClusterSizeHistogram();
  EXPECT_EQ(hist.size(), 193u);  // largest cluster has 192 records
  size_t big = 0;
  for (size_t size = 3; size < hist.size(); ++size) big += hist[size];
  EXPECT_GE(big, 20u);  // many multi-record clusters
  EXPECT_EQ(hist[192], 1u);
}

TEST(PaperGenTest, ClusterMembershipNotContiguous) {
  auto data = GeneratePaper();
  // The largest cluster's record ids must be spread out, not a block.
  const auto& clusters = data.truth.clusters();
  auto largest = std::max_element(
      clusters.begin(), clusters.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  RecordId lo = *std::min_element(largest->begin(), largest->end());
  RecordId hi = *std::max_element(largest->begin(), largest->end());
  EXPECT_GT(hi - lo + 1, largest->size() * 2);
}

TEST(GenerateBenchmarkTest, DispatchesAndNames) {
  EXPECT_EQ(BenchmarkName(BenchmarkKind::kRestaurant), "Restaurant");
  EXPECT_EQ(BenchmarkName(BenchmarkKind::kProduct), "Product");
  EXPECT_EQ(BenchmarkName(BenchmarkKind::kPaper), "Paper");
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.25, 7);
  EXPECT_EQ(data.dataset.size(), 215u);  // Round(858·0.25) with dup cap
}

TEST(GenerateBenchmarkTest, DeterministicInSeed) {
  auto a = GenerateBenchmark(BenchmarkKind::kProduct, 0.1, 99);
  auto b = GenerateBenchmark(BenchmarkKind::kProduct, 0.1, 99);
  ASSERT_EQ(a.dataset.size(), b.dataset.size());
  for (size_t r = 0; r < a.dataset.size(); ++r) {
    EXPECT_EQ(a.dataset.record(r).raw_text, b.dataset.record(r).raw_text);
    EXPECT_EQ(a.truth.entity_of(r), b.truth.entity_of(r));
  }
}

TEST(GenerateBenchmarkTest, DifferentSeedsDiffer) {
  auto a = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 1);
  auto b = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 2);
  size_t differing = 0;
  for (size_t r = 0; r < std::min(a.dataset.size(), b.dataset.size()); ++r) {
    if (a.dataset.record(r).raw_text != b.dataset.record(r).raw_text) {
      ++differing;
    }
  }
  EXPECT_GT(differing, a.dataset.size() / 2);
}

TEST(GenerateBenchmarkTest, MatchingPairsShareTermsAfterPreprocessing) {
  // The candidate-pair space must cover nearly all matching pairs —
  // otherwise blocking recall caps every method's F1.
  for (auto kind : {BenchmarkKind::kRestaurant, BenchmarkKind::kProduct}) {
    auto data = GenerateBenchmark(kind, 0.3, 5);
    RemoveFrequentTerms(&data.dataset);
    PairSpace pairs = PairSpace::Build(data.dataset);
    uint64_t covered = 0, total = 0;
    for (const auto& cluster : data.truth.clusters()) {
      for (size_t i = 0; i < cluster.size(); ++i) {
        for (size_t j = i + 1; j < cluster.size(); ++j) {
          RecordId a = cluster[i], b = cluster[j];
          if (data.dataset.num_sources() == 2 &&
              data.dataset.record(a).source ==
                  data.dataset.record(b).source) {
            continue;
          }
          ++total;
          if (pairs.Find(a, b) != kInvalidPairId) ++covered;
        }
      }
    }
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(covered) / static_cast<double>(total), 0.95)
        << BenchmarkName(kind);
  }
}

}  // namespace
}  // namespace gter
