#include "gter/datagen/vocab_bank.h"

#include <cctype>
#include <set>

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(VocabBankTest, WordBanksAreNonEmptyAndLowercase) {
  for (const auto* bank :
       {&VocabBank::RestaurantNameWords(), &VocabBank::Cuisines(),
        &VocabBank::StreetNames(), &VocabBank::Cities(), &VocabBank::Brands(),
        &VocabBank::ProductCategories(), &VocabBank::ProductCommonWords(),
        &VocabBank::TitleTopicWords(), &VocabBank::VenueWords()}) {
    ASSERT_FALSE(bank->empty());
    for (const auto& word : *bank) {
      ASSERT_FALSE(word.empty());
      for (char c : word) {
        EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) ||
                    std::isdigit(static_cast<unsigned char>(c)))
            << word;
      }
    }
  }
}

TEST(VocabBankTest, StreetSuffixAbbreviations) {
  EXPECT_EQ(VocabBank::AbbreviateStreetSuffix("street"), "st");
  EXPECT_EQ(VocabBank::AbbreviateStreetSuffix("avenue"), "ave");
  EXPECT_EQ(VocabBank::AbbreviateStreetSuffix("boulevard"), "blvd");
  EXPECT_EQ(VocabBank::AbbreviateStreetSuffix("unknown"), "unknown");
  // Every listed suffix has a distinct abbreviation.
  std::set<std::string> abbrs;
  for (const auto& s : VocabBank::StreetSuffixes()) {
    auto a = VocabBank::AbbreviateStreetSuffix(s);
    EXPECT_NE(a, s);
    abbrs.insert(a);
  }
  EXPECT_EQ(abbrs.size(), VocabBank::StreetSuffixes().size());
}

TEST(VocabBankTest, SurnamesArePronounceableAndVaried) {
  Rng rng(1);
  std::set<std::string> names;
  for (int i = 0; i < 500; ++i) {
    std::string name = VocabBank::MakeSurname(&rng);
    EXPECT_GE(name.size(), 4u);
    names.insert(name);
  }
  EXPECT_GT(names.size(), 300u);  // large name space
}

TEST(VocabBankTest, ModelCodesLookLikeProductModels) {
  Rng rng(2);
  std::set<std::string> codes;
  for (int i = 0; i < 500; ++i) {
    std::string code = VocabBank::MakeModelCode(&rng);
    EXPECT_GE(code.size(), 4u);
    bool has_digit = false, has_letter = false;
    for (char c : code) {
      has_digit |= std::isdigit(static_cast<unsigned char>(c)) != 0;
      has_letter |= std::islower(static_cast<unsigned char>(c)) != 0;
    }
    EXPECT_TRUE(has_digit) << code;
    EXPECT_TRUE(has_letter) << code;
    codes.insert(code);
  }
  EXPECT_GT(codes.size(), 490u);  // collisions must be rare
}

TEST(VocabBankTest, PhonesAreTenDigitSingleTokens) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    std::string phone = VocabBank::MakePhone(&rng);
    ASSERT_EQ(phone.size(), 10u);
    for (char c : phone) EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c)));
    EXPECT_GE(phone[0], '2');  // no leading 0/1
  }
}

TEST(VocabBankTest, GeneratorsAreDeterministicInSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(VocabBank::MakeSurname(&a), VocabBank::MakeSurname(&b));
    EXPECT_EQ(VocabBank::MakeModelCode(&a), VocabBank::MakeModelCode(&b));
    EXPECT_EQ(VocabBank::MakePhone(&a), VocabBank::MakePhone(&b));
  }
}

}  // namespace
}  // namespace gter
