#include "gter/datagen/noise.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(NoiseTest, TypoChangesWordByOneEdit) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    std::string word = "panasonic";
    std::string typo = InjectTypo(word, &rng);
    // One edit: length differs by at most 1.
    EXPECT_LE(typo.size(), word.size() + 1);
    EXPECT_GE(typo.size() + 1, word.size());
  }
}

TEST(NoiseTest, TypoOnSingleChar) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    std::string typo = InjectTypo("a", &rng);
    EXPECT_EQ(typo.size(), 1u);  // single chars only get substituted
  }
}

TEST(NoiseTest, TypoOnEmptyWordIsNoop) {
  Rng rng(3);
  EXPECT_EQ(InjectTypo("", &rng), "");
}

TEST(NoiseTest, AbbreviateTruncatesLongWords) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    std::string abbr = Abbreviate("proceedings", &rng);
    EXPECT_GE(abbr.size(), 3u);
    EXPECT_LE(abbr.size(), 4u);
    EXPECT_EQ(abbr, std::string("proceedings").substr(0, abbr.size()));
  }
}

TEST(NoiseTest, AbbreviateKeepsShortWords) {
  Rng rng(5);
  EXPECT_EQ(Abbreviate("abc", &rng), "abc");
  EXPECT_EQ(Abbreviate("ab", &rng), "ab");
}

TEST(NoiseTest, ZeroProbabilityNoiseIsIdentity) {
  Rng rng(6);
  NoiseOptions options;
  options.typo_prob = 0.0;
  options.abbreviate_prob = 0.0;
  options.drop_prob = 0.0;
  std::vector<std::string> tokens = {"golden", "dragon", "palace"};
  EXPECT_EQ(ApplyNoise(tokens, options, &rng), tokens);
}

TEST(NoiseTest, DropProbabilityOneKeepsFirstToken) {
  Rng rng(7);
  NoiseOptions options;
  options.drop_prob = 1.0;
  std::vector<std::string> tokens = {"a", "b", "c"};
  auto out = ApplyNoise(tokens, options, &rng);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "a");
}

TEST(NoiseTest, NoiseRatesRoughlyRespected) {
  Rng rng(8);
  NoiseOptions options;
  options.typo_prob = 0.5;
  options.abbreviate_prob = 0.0;
  options.drop_prob = 0.0;
  size_t changed = 0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    auto out = ApplyNoise({"benchmark"}, options, &rng);
    if (out[0] != "benchmark") ++changed;
  }
  // Some substitutions pick the same letter, so observed < nominal rate.
  EXPECT_GT(changed, kTrials / 4);
  EXPECT_LT(changed, 3 * kTrials / 4);
}

TEST(NoiseTest, JoinTokens) {
  EXPECT_EQ(JoinTokens({"a", "b", "c"}), "a b c");
  EXPECT_EQ(JoinTokens({}), "");
  EXPECT_EQ(JoinTokens({"only"}), "only");
}

TEST(NoiseTest, EmptyInputStaysEmpty) {
  Rng rng(9);
  EXPECT_TRUE(ApplyNoise({}, NoiseOptions{}, &rng).empty());
}

}  // namespace
}  // namespace gter
