#include "gter/er/pair_space.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(PairSpaceTest, OnlySharingPairsMaterialized) {
  Dataset ds("test");
  ds.AddRecord(0, "a b");   // 0
  ds.AddRecord(0, "b c");   // 1
  ds.AddRecord(0, "x y");   // 2
  PairSpace space = PairSpace::Build(ds);
  EXPECT_EQ(space.size(), 1u);
  EXPECT_NE(space.Find(0, 1), kInvalidPairId);
  EXPECT_EQ(space.Find(0, 2), kInvalidPairId);
  EXPECT_EQ(space.Find(1, 2), kInvalidPairId);
}

TEST(PairSpaceTest, FindIsOrderInsensitive) {
  Dataset ds("test");
  ds.AddRecord(0, "a");
  ds.AddRecord(0, "a");
  PairSpace space = PairSpace::Build(ds);
  EXPECT_EQ(space.Find(0, 1), space.Find(1, 0));
}

TEST(PairSpaceTest, PairsStoredWithSmallerIdFirst) {
  Dataset ds("test");
  ds.AddRecord(0, "t");
  ds.AddRecord(0, "t");
  ds.AddRecord(0, "t");
  PairSpace space = PairSpace::Build(ds);
  EXPECT_EQ(space.size(), 3u);
  for (const RecordPair& rp : space.pairs()) EXPECT_LT(rp.a, rp.b);
}

TEST(PairSpaceTest, MultipleSharedTermsYieldOnePair) {
  Dataset ds("test");
  ds.AddRecord(0, "a b c");
  ds.AddRecord(0, "a b d");
  PairSpace space = PairSpace::Build(ds);
  EXPECT_EQ(space.size(), 1u);
}

TEST(PairSpaceTest, TwoSourceRestrictsToCrossPairs) {
  Dataset ds("two", 2);
  ds.AddRecord(0, "shared x");  // 0
  ds.AddRecord(0, "shared y");  // 1  — same source as 0
  ds.AddRecord(1, "shared z");  // 2
  PairSpace space = PairSpace::Build(ds);
  EXPECT_EQ(space.size(), 2u);
  EXPECT_EQ(space.Find(0, 1), kInvalidPairId);  // same-source pair excluded
  EXPECT_NE(space.Find(0, 2), kInvalidPairId);
  EXPECT_NE(space.Find(1, 2), kInvalidPairId);
}

TEST(PairSpaceTest, UniverseSizeSingleSource) {
  Dataset ds("test");
  for (int i = 0; i < 5; ++i) {
    std::string text = "r";
    text += std::to_string(i);
    ds.AddRecord(0, std::move(text));
  }
  PairSpace space = PairSpace::Build(ds);
  EXPECT_EQ(space.UniverseSize(ds), 10u);  // 5*4/2
}

TEST(PairSpaceTest, UniverseSizeTwoSource) {
  Dataset ds("two", 2);
  ds.AddRecord(0, "a");
  ds.AddRecord(0, "b");
  ds.AddRecord(1, "c");
  ds.AddRecord(1, "d");
  ds.AddRecord(1, "e");
  PairSpace space = PairSpace::Build(ds);
  EXPECT_EQ(space.UniverseSize(ds), 6u);  // 2*3
}

TEST(PairSpaceTest, EmptyDatasetYieldsNoPairs) {
  Dataset ds("test");
  PairSpace space = PairSpace::Build(ds);
  EXPECT_EQ(space.size(), 0u);
}

TEST(PairSpaceTest, CliqueOfSharers) {
  Dataset ds("test");
  for (int i = 0; i < 6; ++i) ds.AddRecord(0, "common");
  PairSpace space = PairSpace::Build(ds);
  EXPECT_EQ(space.size(), 15u);  // 6 choose 2
}

TEST(PairSpaceTest, AppendAssignsStableIdsAndDedupes) {
  PairSpace space;
  PairId p0 = space.Append(3, 1);  // canonicalized to (1, 3)
  PairId p1 = space.Append(2, 5);
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(space.size(), 2u);
  EXPECT_EQ(space.pairs()[p0].a, 1u);
  EXPECT_EQ(space.pairs()[p0].b, 3u);
  // Re-appending (either orientation) returns the existing id.
  EXPECT_EQ(space.Append(1, 3), p0);
  EXPECT_EQ(space.Append(5, 2), p1);
  EXPECT_EQ(space.size(), 2u);
  // Find sees appended pairs.
  EXPECT_EQ(space.Find(3, 1), p0);
  EXPECT_EQ(space.Find(2, 5), p1);
  EXPECT_EQ(space.Find(1, 2), kInvalidPairId);
}

TEST(PairSpaceTest, AppendInterleavesWithBuild) {
  Dataset ds("test");
  ds.AddRecord(0, "a b");
  ds.AddRecord(0, "b c");
  ds.AddRecord(0, "x");
  PairSpace space = PairSpace::Build(ds);
  ASSERT_EQ(space.size(), 1u);
  PairId existing = space.Find(0, 1);
  // Built pairs dedupe through Append; new pairs extend the id space.
  EXPECT_EQ(space.Append(1, 0), existing);
  PairId fresh = space.Append(2, 0);
  EXPECT_EQ(fresh, 1u);
  EXPECT_EQ(space.Find(0, 2), fresh);
}

}  // namespace
}  // namespace gter
