#include "gter/er/preprocess.h"

#include <gtest/gtest.h>

#include "gter/er/pair_space.h"

namespace gter {
namespace {

Dataset TenRecordsWithStopword() {
  Dataset ds("test");
  for (int i = 0; i < 10; ++i) {
    // "the" is in every record; "unique<i>" in exactly one.
    ds.AddRecord(0, "the unique" + std::to_string(i));
  }
  return ds;
}

TEST(PreprocessTest, RemovesTermsAboveRatio) {
  Dataset ds = TenRecordsWithStopword();
  PreprocessOptions options;
  options.max_df_ratio = 0.5;  // cap = 5 records
  PreprocessStats stats = RemoveFrequentTerms(&ds, options);
  EXPECT_EQ(stats.terms_removed, 1u);
  EXPECT_EQ(stats.terms_kept, 10u);
  TermId the = ds.vocabulary().Lookup("the");
  for (const Record& rec : ds.records()) {
    for (TermId t : rec.terms) EXPECT_NE(t, the);
    EXPECT_EQ(rec.terms.size(), 1u);
  }
}

TEST(PreprocessTest, TokensAlsoFiltered) {
  Dataset ds = TenRecordsWithStopword();
  PreprocessOptions options;
  options.max_df_ratio = 0.5;
  PreprocessStats stats = RemoveFrequentTerms(&ds, options);
  EXPECT_EQ(stats.token_occurrences_removed, 10u);
  for (const Record& rec : ds.records()) EXPECT_EQ(rec.tokens.size(), 1u);
}

TEST(PreprocessTest, NothingRemovedWhenAllRare) {
  Dataset ds("test");
  ds.AddRecord(0, "a b");
  ds.AddRecord(0, "c d");
  PreprocessStats stats = RemoveFrequentTerms(&ds);
  EXPECT_EQ(stats.terms_removed, 0u);
  EXPECT_EQ(stats.terms_kept, 4u);
}

TEST(PreprocessTest, AbsoluteCapApplies) {
  Dataset ds("test");
  for (int i = 0; i < 4; ++i) ds.AddRecord(0, "common r" + std::to_string(i));
  PreprocessOptions options;
  options.max_df_ratio = 1.0;    // ratio alone would keep everything
  options.max_df_absolute = 3;   // but df("common") = 4 > 3
  PreprocessStats stats = RemoveFrequentTerms(&ds, options);
  EXPECT_EQ(stats.terms_removed, 1u);
}

TEST(PreprocessTest, PairSpaceShrinksAfterPreprocessing) {
  Dataset ds = TenRecordsWithStopword();
  EXPECT_EQ(PairSpace::Build(ds).size(), 45u);  // all pairs share "the"
  PreprocessOptions options;
  options.max_df_ratio = 0.5;
  RemoveFrequentTerms(&ds, options);
  EXPECT_EQ(PairSpace::Build(ds).size(), 0u);
}

TEST(PreprocessTest, RecordCanBecomeEmpty) {
  Dataset ds("test");
  for (int i = 0; i < 5; ++i) ds.AddRecord(0, "only");
  PreprocessOptions options;
  options.max_df_ratio = 0.2;
  RemoveFrequentTerms(&ds, options);
  for (const Record& rec : ds.records()) EXPECT_TRUE(rec.terms.empty());
}

}  // namespace
}  // namespace gter
