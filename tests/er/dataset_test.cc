#include "gter/er/dataset.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(DatasetTest, AddRecordTokenizesAndInterns) {
  Dataset ds("test");
  RecordId id = ds.AddRecord(0, "Golden Dragon, Golden City");
  EXPECT_EQ(id, 0u);
  const Record& rec = ds.record(id);
  ASSERT_EQ(rec.tokens.size(), 4u);
  // "golden" appears twice and must map to the same id.
  EXPECT_EQ(rec.tokens[0], rec.tokens[2]);
  // Term set is sorted and deduplicated.
  ASSERT_EQ(rec.terms.size(), 3u);
  EXPECT_TRUE(std::is_sorted(rec.terms.begin(), rec.terms.end()));
}

TEST(DatasetTest, FieldsArePreserved) {
  Dataset ds("test");
  RecordId id = ds.AddRecord(0, "a b", {"field one", "field two"});
  ASSERT_EQ(ds.record(id).fields.size(), 2u);
  EXPECT_EQ(ds.record(id).fields[1], "field two");
}

TEST(DatasetTest, SharedVocabularyAcrossRecords) {
  Dataset ds("test");
  ds.AddRecord(0, "alpha beta");
  ds.AddRecord(0, "beta gamma");
  EXPECT_EQ(ds.vocabulary().size(), 3u);
  EXPECT_EQ(ds.record(0).terms[1], ds.record(1).terms[0]);
}

TEST(DatasetTest, DocumentFrequencies) {
  Dataset ds("test");
  ds.AddRecord(0, "a b");
  ds.AddRecord(0, "b c");
  ds.AddRecord(0, "b b b");
  auto df = ds.ComputeDocumentFrequencies();
  TermId b = ds.vocabulary().Lookup("b");
  TermId a = ds.vocabulary().Lookup("a");
  EXPECT_EQ(df[b], 3u);  // counted once per record despite repeats
  EXPECT_EQ(df[a], 1u);
}

TEST(DatasetTest, InvertedIndex) {
  Dataset ds("test");
  ds.AddRecord(0, "x y");
  ds.AddRecord(0, "y z");
  auto index = ds.BuildInvertedIndex();
  TermId y = ds.vocabulary().Lookup("y");
  ASSERT_EQ(index[y].size(), 2u);
  EXPECT_EQ(index[y][0], 0u);
  EXPECT_EQ(index[y][1], 1u);
}

TEST(DatasetTest, TokenCorpusKeepsDuplicates) {
  Dataset ds("test");
  ds.AddRecord(0, "w w v");
  auto corpus = ds.TokenCorpus();
  ASSERT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus[0].size(), 3u);
}

TEST(DatasetTest, TwoSourceRecordsKeepSource) {
  Dataset ds("two", 2);
  ds.AddRecord(0, "a");
  ds.AddRecord(1, "b");
  EXPECT_EQ(ds.record(0).source, 0u);
  EXPECT_EQ(ds.record(1).source, 1u);
}

TEST(DatasetDeathTest, OutOfRangeSourceAborts) {
  Dataset ds("one", 1);
  EXPECT_DEATH(ds.AddRecord(1, "a"), "GTER_CHECK");
}

TEST(DatasetTest, TokenizerOptionsAreApplied) {
  Dataset ds("test");
  TokenizerOptions options;
  options.min_token_length = 3;
  ds.set_tokenizer_options(options);
  ds.AddRecord(0, "ab abc abcd");
  EXPECT_EQ(ds.record(0).tokens.size(), 2u);
}

}  // namespace
}  // namespace gter
