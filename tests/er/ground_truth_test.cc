#include "gter/er/ground_truth.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(GroundTruthTest, BasicProperties) {
  GroundTruth truth({0, 0, 1, 2, 2, 2});
  EXPECT_EQ(truth.num_records(), 6u);
  EXPECT_EQ(truth.num_entities(), 3u);
  EXPECT_TRUE(truth.IsMatch(0, 1));
  EXPECT_FALSE(truth.IsMatch(1, 2));
  EXPECT_TRUE(truth.IsMatch(3, 5));
}

TEST(GroundTruthTest, Clusters) {
  GroundTruth truth({0, 1, 0, 1, 1});
  ASSERT_EQ(truth.clusters().size(), 2u);
  EXPECT_EQ(truth.clusters()[0].size(), 2u);
  EXPECT_EQ(truth.clusters()[1].size(), 3u);
}

TEST(GroundTruthTest, CountMatchingPairs) {
  // cluster sizes 2, 1, 3 → 1 + 0 + 3 = 4 pairs
  GroundTruth truth({0, 0, 1, 2, 2, 2});
  EXPECT_EQ(truth.CountMatchingPairs(), 4u);
}

TEST(GroundTruthTest, CountMatchingCrossPairs) {
  // Entity 0: records {0 (src0), 1 (src1), 2 (src1)} → 1*2 = 2 cross pairs.
  // Entity 1: records {3 (src0), 4 (src0)} → 0 cross pairs.
  GroundTruth truth({0, 0, 0, 1, 1});
  std::vector<uint32_t> sources = {0, 1, 1, 0, 0};
  EXPECT_EQ(truth.CountMatchingCrossPairs(sources), 2u);
}

TEST(GroundTruthTest, ClusterSizeHistogram) {
  GroundTruth truth({0, 0, 1, 2, 2, 2});
  auto hist = truth.ClusterSizeHistogram();
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(GroundTruthTest, SingletonsOnly) {
  GroundTruth truth({0, 1, 2});
  EXPECT_EQ(truth.CountMatchingPairs(), 0u);
  EXPECT_EQ(truth.num_entities(), 3u);
}

TEST(GroundTruthTest, EmptyTruth) {
  GroundTruth truth{std::vector<EntityId>{}};
  EXPECT_EQ(truth.num_records(), 0u);
  EXPECT_EQ(truth.num_entities(), 0u);
  EXPECT_EQ(truth.CountMatchingPairs(), 0u);
}

}  // namespace
}  // namespace gter
