#include "gter/er/csv.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace gter {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CsvLineTest, SimpleFields) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvLineTest, QuotedFieldWithComma) {
  auto fields = ParseCsvLine("a,\"b, with comma\",c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b, with comma");
}

TEST(CsvLineTest, EscapedQuotes) {
  auto fields = ParseCsvLine("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(CsvLineTest, EmptyFields) {
  auto fields = ParseCsvLine(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(CsvLineTest, FormatAndParseRoundTrip) {
  std::vector<std::string> original = {"plain", "with, comma", "with \"quote\"",
                                       ""};
  std::string line = FormatCsvLine(original);
  EXPECT_EQ(ParseCsvLine(line), original);
}

TEST(CsvFileTest, WriteAndReadBack) {
  std::string path = TempPath("gter_csv_test.csv");
  std::vector<std::vector<std::string>> rows = {{"h1", "h2"},
                                                {"a", "b, c"},
                                                {"d", ""}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto result = ReadCsvFile(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  auto result = ReadCsvFile("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(DatasetCsvTest, SaveAndLoadRoundTrip) {
  Dataset ds("orig", 2);
  ds.AddRecord(0, "golden dragon 123 main st",
               {"golden dragon", "123 main st"});
  ds.AddRecord(1, "golden dragon restaurant",
               {"golden dragon restaurant"});
  GroundTruth truth({0, 0});

  std::string path = TempPath("gter_dataset_test.csv");
  ASSERT_TRUE(SaveDatasetCsv(path, ds, truth).ok());
  auto result = LoadDatasetCsv(path, "loaded", 2);
  ASSERT_TRUE(result.ok());
  const auto& [loaded, loaded_truth] = result.value();
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.record(0).source, 0u);
  EXPECT_EQ(loaded.record(1).source, 1u);
  EXPECT_TRUE(loaded_truth.IsMatch(0, 1));
  EXPECT_EQ(loaded.record(0).fields.size(), 2u);
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, SizeMismatchRejected) {
  Dataset ds("x");
  ds.AddRecord(0, "a");
  GroundTruth truth({0, 1});
  EXPECT_FALSE(SaveDatasetCsv(TempPath("gter_mismatch.csv"), ds, truth).ok());
}

TEST(DatasetCsvTest, OutOfRangeSourceRejectedOnLoad) {
  std::string path = TempPath("gter_bad_source.csv");
  ASSERT_TRUE(WriteCsvFile(path, {{"entity", "source", "text"},
                                  {"0", "5", "hello"}})
                  .ok());
  auto result = LoadDatasetCsv(path, "bad", 1);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gter
