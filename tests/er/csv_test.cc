#include "gter/er/csv.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "gter/common/random.h"

namespace gter {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CsvLineTest, SimpleFields) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvLineTest, QuotedFieldWithComma) {
  auto fields = ParseCsvLine("a,\"b, with comma\",c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b, with comma");
}

TEST(CsvLineTest, EscapedQuotes) {
  auto fields = ParseCsvLine("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(CsvLineTest, EmptyFields) {
  auto fields = ParseCsvLine(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(CsvLineTest, FormatAndParseRoundTrip) {
  std::vector<std::string> original = {"plain", "with, comma", "with \"quote\"",
                                       ""};
  std::string line = FormatCsvLine(original);
  EXPECT_EQ(ParseCsvLine(line), original);
}

TEST(CsvFileTest, WriteAndReadBack) {
  std::string path = TempPath("gter_csv_test.csv");
  std::vector<std::vector<std::string>> rows = {{"h1", "h2"},
                                                {"a", "b, c"},
                                                {"d", ""}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto result = ReadCsvFile(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  auto result = ReadCsvFile("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(DatasetCsvTest, SaveAndLoadRoundTrip) {
  Dataset ds("orig", 2);
  ds.AddRecord(0, "golden dragon 123 main st",
               {"golden dragon", "123 main st"});
  ds.AddRecord(1, "golden dragon restaurant",
               {"golden dragon restaurant"});
  GroundTruth truth({0, 0});

  std::string path = TempPath("gter_dataset_test.csv");
  ASSERT_TRUE(SaveDatasetCsv(path, ds, truth).ok());
  auto result = LoadDatasetCsv(path, "loaded", 2);
  ASSERT_TRUE(result.ok());
  const auto& [loaded, loaded_truth] = result.value();
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.record(0).source, 0u);
  EXPECT_EQ(loaded.record(1).source, 1u);
  EXPECT_TRUE(loaded_truth.IsMatch(0, 1));
  EXPECT_EQ(loaded.record(0).fields.size(), 2u);
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, SizeMismatchRejected) {
  Dataset ds("x");
  ds.AddRecord(0, "a");
  GroundTruth truth({0, 1});
  EXPECT_FALSE(SaveDatasetCsv(TempPath("gter_mismatch.csv"), ds, truth).ok());
}

TEST(CsvParserTest, QuotedFieldSpansLines) {
  auto rows = ParseCsv("a,\"line1\nline2\",c\nd,e,f\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0][1], "line1\nline2");
  EXPECT_EQ(rows.value()[1][0], "d");
}

TEST(CsvParserTest, EmptyRecordsArePreserved) {
  // A bare newline is a record with one empty field. The old line-based
  // reader dropped it, shifting every later GroundTruth entity id.
  auto rows = ParseCsv("a\n\nb\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);
  EXPECT_EQ(rows.value()[1], std::vector<std::string>{""});
}

TEST(CsvParserTest, TrailingNewlineEmitsNoPhantomRecord) {
  auto rows = ParseCsv("a,b\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 1u);
}

TEST(CsvParserTest, FinalRecordWithoutTerminator) {
  auto rows = ParseCsv("a,b\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[1][1], "d");
}

TEST(CsvParserTest, CrlfAndLoneCrAreSingleTerminators) {
  auto rows = ParseCsv("a\r\nb\rc\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);
  EXPECT_EQ(rows.value()[0][0], "a");
  EXPECT_EQ(rows.value()[1][0], "b");
  EXPECT_EQ(rows.value()[2][0], "c");
}

TEST(CsvParserTest, CrlfSplitAcrossChunksIsOneTerminator) {
  CsvParser parser;
  parser.Feed("a\r");
  parser.Feed("\nb\n");
  ASSERT_TRUE(parser.Finish().ok());
  ASSERT_EQ(parser.rows().size(), 2u);
  EXPECT_EQ(parser.rows()[0][0], "a");
  EXPECT_EQ(parser.rows()[1][0], "b");
}

TEST(CsvParserTest, SingleByteChunksMatchOneShot) {
  const std::string doc = "a,\"x\r\ny\"\"z\",\n\n\"q\",w\r\nend";
  auto oneshot = ParseCsv(doc);
  ASSERT_TRUE(oneshot.ok());
  CsvParser parser;
  for (char c : doc) parser.Feed(std::string_view(&c, 1));
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(parser.rows(), oneshot.value());
}

TEST(CsvParserTest, UnterminatedQuoteIsInvalidArgument) {
  auto rows = ParseCsv("a,\"never closed");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvParserTest, QuotedFieldsWithEveryNastyByte) {
  std::vector<std::string> fields = {"plain", "a,b", "say \"hi\"",
                                     "line\nbreak", "cr\rhere", "", "end"};
  auto rows = ParseCsv(FormatCsvLine(fields) + "\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0], fields);
}

TEST(CsvFileTest, RandomizedFieldsRoundTripIdentically) {
  // Property: WriteCsvFile → ReadCsvFile is the identity on arbitrary
  // field bytes — commas, quotes, CR, LF, empties — for any row shape.
  Rng rng(20180415);
  const char alphabet[] = {'a', 'b', ',', '"', '\n', '\r', ' ', 'z'};
  std::string path = TempPath("gter_csv_random_roundtrip.csv");
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::vector<std::vector<std::string>> rows;
    const size_t num_rows = 1 + rng.NextBounded(20);
    for (size_t r = 0; r < num_rows; ++r) {
      std::vector<std::string> row;
      const size_t num_fields = 1 + rng.NextBounded(5);
      for (size_t f = 0; f < num_fields; ++f) {
        std::string field;
        const size_t len = rng.NextBounded(12);
        for (size_t i = 0; i < len; ++i) {
          field.push_back(alphabet[rng.NextBounded(sizeof(alphabet))]);
        }
        row.push_back(std::move(field));
      }
      rows.push_back(std::move(row));
    }
    ASSERT_TRUE(WriteCsvFile(path, rows).ok());
    auto back = ReadCsvFile(path);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ASSERT_EQ(back.value(), rows) << "iteration " << iteration;
  }
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, MalformedEntityColumnIsError) {
  std::string path = TempPath("gter_bad_entity.csv");
  ASSERT_TRUE(WriteCsvFile(path, {{"entity", "source", "text"},
                                  {"7fff", "0", "hello"}})
                  .ok());
  auto result = LoadDatasetCsv(path, "bad", 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, OutOfRangeSourceRejectedOnLoad) {
  std::string path = TempPath("gter_bad_source.csv");
  ASSERT_TRUE(WriteCsvFile(path, {{"entity", "source", "text"},
                                  {"0", "5", "hello"}})
                  .ok());
  auto result = LoadDatasetCsv(path, "bad", 1);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gter
