#include "gter/er/blocking.h"

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "gter/common/random.h"
#include "gter/datagen/datagen.h"
#include "gter/er/preprocess.h"
#include "gter/text/string_metrics.h"

namespace gter {
namespace {

TEST(MinHasherTest, SignatureLengthAndDeterminism) {
  MinHasher hasher(64, 7);
  std::vector<TermId> terms = {1, 5, 9, 12};
  auto a = hasher.Signature(terms);
  auto b = hasher.Signature(terms);
  ASSERT_EQ(a.size(), 64u);
  EXPECT_EQ(a, b);
}

TEST(MinHasherTest, IdenticalSetsCollideEverywhere) {
  MinHasher hasher(32);
  std::vector<TermId> terms = {3, 14, 15};
  EXPECT_DOUBLE_EQ(
      MinHasher::EstimateJaccard(hasher.Signature(terms),
                                 hasher.Signature(terms)),
      1.0);
}

TEST(MinHasherTest, DisjointSetsRarelyCollide) {
  MinHasher hasher(128);
  std::vector<TermId> a = {1, 2, 3, 4, 5};
  std::vector<TermId> b = {100, 200, 300, 400, 500};
  EXPECT_LT(MinHasher::EstimateJaccard(hasher.Signature(a),
                                       hasher.Signature(b)),
            0.1);
}

/// Property sweep: the collision rate estimates Jaccard within sampling
/// error across overlap levels.
class MinHashJaccardEstimate
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MinHashJaccardEstimate, EstimatesTrueJaccard) {
  auto [shared, exclusive] = GetParam();
  std::vector<TermId> a, b;
  for (int i = 0; i < shared; ++i) {
    a.push_back(static_cast<TermId>(i));
    b.push_back(static_cast<TermId>(i));
  }
  for (int i = 0; i < exclusive; ++i) {
    a.push_back(static_cast<TermId>(1000 + i));
    b.push_back(static_cast<TermId>(2000 + i));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double truth = JaccardSimilarity(a, b);
  MinHasher hasher(512, 11);
  double estimate =
      MinHasher::EstimateJaccard(hasher.Signature(a), hasher.Signature(b));
  // 512 hashes → stderr ≈ sqrt(J(1−J)/512) ≤ 0.023; allow 4σ.
  EXPECT_NEAR(estimate, truth, 0.09);
}

INSTANTIATE_TEST_SUITE_P(
    OverlapLevels, MinHashJaccardEstimate,
    ::testing::Values(std::make_tuple(0, 10), std::make_tuple(2, 8),
                      std::make_tuple(5, 5), std::make_tuple(8, 2),
                      std::make_tuple(10, 0)),
    [](const auto& info) {
      return "shared" + std::to_string(std::get<0>(info.param)) + "_excl" +
             std::to_string(std::get<1>(info.param));
    });

TEST(LshBlockingTest, HighRecallOnRestaurantMatches) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.3, 3);
  RemoveFrequentTerms(&data.dataset);
  // Short-listing matches have Jaccard ≈ 0.3, so high recall needs an
  // aggressive banding: 32 bands of 2 rows catch J=0.3 with p ≈ 0.95.
  LshBlockingOptions options;
  options.num_bands = 32;
  options.rows_per_band = 2;
  BlockingResult result = LshBlocking(data.dataset, options).value();
  EXPECT_GT(BlockingRecall(data.dataset, data.truth, result.pairs), 0.9);
  // And it must not devolve into all-pairs.
  size_t n = data.dataset.size();
  EXPECT_LT(result.pairs.size(), n * (n - 1) / 4);
}

TEST(LshBlockingTest, CrossSourceOnlyForTwoSourceData) {
  auto data = GenerateBenchmark(BenchmarkKind::kProduct, 0.1, 3);
  RemoveFrequentTerms(&data.dataset);
  BlockingResult result = LshBlocking(data.dataset, {}).value();
  for (const RecordPair& rp : result.pairs) {
    EXPECT_NE(data.dataset.record(rp.a).source,
              data.dataset.record(rp.b).source);
  }
}

TEST(LshBlockingTest, PairsAreOrderedAndUnique) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.15, 9);
  RemoveFrequentTerms(&data.dataset);
  BlockingResult result = LshBlocking(data.dataset, {}).value();
  std::set<std::pair<RecordId, RecordId>> seen;
  for (const RecordPair& rp : result.pairs) {
    EXPECT_LT(rp.a, rp.b);
    EXPECT_TRUE(seen.emplace(rp.a, rp.b).second);
  }
}

TEST(LshBlockingTest, MoreBandsNeverLowerRecall) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.2, 5);
  RemoveFrequentTerms(&data.dataset);
  LshBlockingOptions few;
  few.num_bands = 4;
  few.rows_per_band = 4;
  LshBlockingOptions many = few;
  many.num_bands = 32;
  double recall_few =
      BlockingRecall(data.dataset, data.truth,
                     LshBlocking(data.dataset, few).value().pairs);
  double recall_many =
      BlockingRecall(data.dataset, data.truth,
                     LshBlocking(data.dataset, many).value().pairs);
  EXPECT_GE(recall_many + 1e-12, recall_few);
}

TEST(CanopyBlockingTest, HighRecallWithFarFewerPairs) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.3, 3);
  RemoveFrequentTerms(&data.dataset);
  CanopyBlockingOptions options;
  options.loose_threshold = 0.15;
  options.tight_threshold = 0.6;
  BlockingResult result = CanopyBlocking(data.dataset, options).value();
  EXPECT_GT(BlockingRecall(data.dataset, data.truth, result.pairs), 0.9);
  size_t n = data.dataset.size();
  EXPECT_LT(result.pairs.size(), n * (n - 1) / 4);
  EXPECT_GT(result.buckets, 1u);
}

TEST(CanopyBlockingTest, LooserThresholdNeverLowersRecall) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.2, 5);
  RemoveFrequentTerms(&data.dataset);
  CanopyBlockingOptions tight;
  tight.loose_threshold = 0.5;
  tight.tight_threshold = 0.8;
  CanopyBlockingOptions loose = tight;
  loose.loose_threshold = 0.1;
  double r_tight =
      BlockingRecall(data.dataset, data.truth,
                     CanopyBlocking(data.dataset, tight).value().pairs);
  double r_loose =
      BlockingRecall(data.dataset, data.truth,
                     CanopyBlocking(data.dataset, loose).value().pairs);
  EXPECT_GE(r_loose + 1e-12, r_tight);
}

TEST(CanopyBlockingTest, CrossSourceOnlyForTwoSourceData) {
  auto data = GenerateBenchmark(BenchmarkKind::kProduct, 0.08, 3);
  RemoveFrequentTerms(&data.dataset);
  BlockingResult result = CanopyBlocking(data.dataset, {}).value();
  for (const RecordPair& rp : result.pairs) {
    EXPECT_NE(data.dataset.record(rp.a).source,
              data.dataset.record(rp.b).source);
  }
}

TEST(CanopyBlockingTest, EveryRecordEndsInSomeCanopy) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 13);
  RemoveFrequentTerms(&data.dataset);
  // Number of canopies is at most the number of records and at least 1.
  BlockingResult result = CanopyBlocking(data.dataset, {}).value();
  EXPECT_GE(result.buckets, 1u);
  EXPECT_LE(result.buckets, data.dataset.size());
}

TEST(BlockingRecallTest, EmptyPairsZeroRecall) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 7);
  EXPECT_DOUBLE_EQ(BlockingRecall(data.dataset, data.truth, {}), 0.0);
}

}  // namespace
}  // namespace gter
