#include "gter/er/blocking.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <utility>

#include <gtest/gtest.h>

#include "gter/common/random.h"
#include "gter/datagen/datagen.h"
#include "gter/er/preprocess.h"
#include "gter/text/string_metrics.h"

namespace gter {
namespace {

TEST(MinHasherTest, SignatureLengthAndDeterminism) {
  MinHasher hasher(64, 7);
  std::vector<TermId> terms = {1, 5, 9, 12};
  auto a = hasher.Signature(terms);
  auto b = hasher.Signature(terms);
  ASSERT_EQ(a.size(), 64u);
  EXPECT_EQ(a, b);
}

TEST(MinHasherTest, IdenticalSetsCollideEverywhere) {
  MinHasher hasher(32);
  std::vector<TermId> terms = {3, 14, 15};
  EXPECT_DOUBLE_EQ(
      MinHasher::EstimateJaccard(hasher.Signature(terms),
                                 hasher.Signature(terms)),
      1.0);
}

TEST(MinHasherTest, DisjointSetsRarelyCollide) {
  MinHasher hasher(128);
  std::vector<TermId> a = {1, 2, 3, 4, 5};
  std::vector<TermId> b = {100, 200, 300, 400, 500};
  EXPECT_LT(MinHasher::EstimateJaccard(hasher.Signature(a),
                                       hasher.Signature(b)),
            0.1);
}

/// Property sweep: the collision rate estimates Jaccard within sampling
/// error across overlap levels.
class MinHashJaccardEstimate
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MinHashJaccardEstimate, EstimatesTrueJaccard) {
  auto [shared, exclusive] = GetParam();
  std::vector<TermId> a, b;
  for (int i = 0; i < shared; ++i) {
    a.push_back(static_cast<TermId>(i));
    b.push_back(static_cast<TermId>(i));
  }
  for (int i = 0; i < exclusive; ++i) {
    a.push_back(static_cast<TermId>(1000 + i));
    b.push_back(static_cast<TermId>(2000 + i));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double truth = JaccardSimilarity(a, b);
  MinHasher hasher(512, 11);
  double estimate =
      MinHasher::EstimateJaccard(hasher.Signature(a), hasher.Signature(b));
  // 512 hashes → stderr ≈ sqrt(J(1−J)/512) ≤ 0.023; allow 4σ.
  EXPECT_NEAR(estimate, truth, 0.09);
}

INSTANTIATE_TEST_SUITE_P(
    OverlapLevels, MinHashJaccardEstimate,
    ::testing::Values(std::make_tuple(0, 10), std::make_tuple(2, 8),
                      std::make_tuple(5, 5), std::make_tuple(8, 2),
                      std::make_tuple(10, 0)),
    [](const auto& info) {
      return "shared" + std::to_string(std::get<0>(info.param)) + "_excl" +
             std::to_string(std::get<1>(info.param));
    });

TEST(LshBlockingTest, HighRecallOnRestaurantMatches) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.3, 3);
  RemoveFrequentTerms(&data.dataset);
  // Short-listing matches have Jaccard ≈ 0.3, so high recall needs an
  // aggressive banding: 32 bands of 2 rows catch J=0.3 with p ≈ 0.95.
  LshBlockingOptions options;
  options.num_bands = 32;
  options.rows_per_band = 2;
  BlockingResult result = LshBlocking(data.dataset, options).value();
  EXPECT_GT(BlockingRecall(data.dataset, data.truth, result.pairs), 0.9);
  // And it must not devolve into all-pairs.
  size_t n = data.dataset.size();
  EXPECT_LT(result.pairs.size(), n * (n - 1) / 4);
}

TEST(LshBlockingTest, CrossSourceOnlyForTwoSourceData) {
  auto data = GenerateBenchmark(BenchmarkKind::kProduct, 0.1, 3);
  RemoveFrequentTerms(&data.dataset);
  BlockingResult result = LshBlocking(data.dataset, {}).value();
  for (const RecordPair& rp : result.pairs) {
    EXPECT_NE(data.dataset.record(rp.a).source,
              data.dataset.record(rp.b).source);
  }
}

TEST(LshBlockingTest, PairsAreOrderedAndUnique) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.15, 9);
  RemoveFrequentTerms(&data.dataset);
  BlockingResult result = LshBlocking(data.dataset, {}).value();
  std::set<std::pair<RecordId, RecordId>> seen;
  for (const RecordPair& rp : result.pairs) {
    EXPECT_LT(rp.a, rp.b);
    EXPECT_TRUE(seen.emplace(rp.a, rp.b).second);
  }
}

TEST(LshBlockingTest, MoreBandsNeverLowerRecall) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.2, 5);
  RemoveFrequentTerms(&data.dataset);
  LshBlockingOptions few;
  few.num_bands = 4;
  few.rows_per_band = 4;
  LshBlockingOptions many = few;
  many.num_bands = 32;
  double recall_few =
      BlockingRecall(data.dataset, data.truth,
                     LshBlocking(data.dataset, few).value().pairs);
  double recall_many =
      BlockingRecall(data.dataset, data.truth,
                     LshBlocking(data.dataset, many).value().pairs);
  EXPECT_GE(recall_many + 1e-12, recall_few);
}

// --- Incremental posting index (DESIGN.md §4g) -------------------------

std::set<std::pair<RecordId, RecordId>> AsSet(
    const std::vector<RecordPair>& pairs) {
  std::set<std::pair<RecordId, RecordId>> out;
  for (const RecordPair& rp : pairs) out.emplace(rp.a, rp.b);
  return out;
}

// Streaming every record through Upsert — in a shuffled order — emits
// exactly the batch LshBlocking pair set, and the bucket population
// matches too.
TEST(LshPostingIndexTest, StreamedUpsertsMatchBatchBlocking) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.2, 17);
  RemoveFrequentTerms(&data.dataset);
  LshBlockingOptions options;
  options.num_bands = 32;
  options.rows_per_band = 2;
  BlockingResult batch = LshBlocking(data.dataset, options).value();

  std::vector<uint32_t> order(data.dataset.size());
  for (uint32_t r = 0; r < order.size(); ++r) order[r] = r;
  Rng rng(99);
  rng.Shuffle(&order);

  LshPostingIndex index(data.dataset.num_sources(), options);
  std::vector<RecordPair> streamed;
  for (RecordId r : order) {
    const Record& rec = data.dataset.record(r);
    auto fresh = index.Upsert(r, rec.terms, rec.source);
    streamed.insert(streamed.end(), fresh.begin(), fresh.end());
  }
  EXPECT_EQ(AsSet(streamed), AsSet(batch.pairs));
  EXPECT_EQ(index.num_pairs(), batch.pairs.size());
  EXPECT_EQ(index.num_buckets(), batch.buckets);
}

// Re-upserting a record with a changed term set moves it between buckets:
// the index converges to the state of a stream that only ever saw the
// final term sets.
TEST(LshPostingIndexTest, ReupsertRehashesRecord) {
  LshBlockingOptions options;
  options.num_bands = 8;
  options.rows_per_band = 2;
  LshPostingIndex index(1, options);
  index.Upsert(0, {1, 2, 3}, 0);
  index.Upsert(1, {100, 200}, 0);    // unrelated at first
  index.Upsert(1, {1, 2, 3}, 0);     // now identical to record 0
  // Identical sets collide in every band → the pair must have been found.
  EXPECT_EQ(index.num_pairs(), 1u);
  // And the stale buckets for record 1's old signature are gone: a fresh
  // stream of the final state has the same bucket count.
  LshPostingIndex fresh(1, options);
  fresh.Upsert(0, {1, 2, 3}, 0);
  fresh.Upsert(1, {1, 2, 3}, 0);
  EXPECT_EQ(index.num_buckets(), fresh.num_buckets());
}

TEST(LshPostingIndexTest, DirtyBandsRaiseAndClear) {
  LshBlockingOptions options;
  options.num_bands = 4;
  options.rows_per_band = 2;
  LshPostingIndex index(1, options);
  for (uint8_t d : index.dirty_bands()) EXPECT_EQ(d, 0);
  index.Upsert(0, {5, 6}, 0);
  for (uint8_t d : index.dirty_bands()) EXPECT_EQ(d, 1);
  index.ClearDirtyBands();
  for (uint8_t d : index.dirty_bands()) EXPECT_EQ(d, 0);
  // An empty-term upsert of an unbucketed record touches nothing.
  index.Upsert(1, {}, 0);
  for (uint8_t d : index.dirty_bands()) EXPECT_EQ(d, 0);
}

TEST(LshPostingIndexTest, TwoSourceSuppressesSameSourcePairs) {
  LshBlockingOptions options;
  options.num_bands = 8;
  options.rows_per_band = 2;
  LshPostingIndex index(2, options);
  index.Upsert(0, {1, 2, 3}, 0);
  auto same = index.Upsert(1, {1, 2, 3}, 0);   // same source, identical set
  EXPECT_TRUE(same.empty());
  auto cross = index.Upsert(2, {1, 2, 3}, 1);  // other source
  EXPECT_EQ(cross.size(), 2u);
}

TEST(CanopyBlockingTest, HighRecallWithFarFewerPairs) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.3, 3);
  RemoveFrequentTerms(&data.dataset);
  CanopyBlockingOptions options;
  options.loose_threshold = 0.15;
  options.tight_threshold = 0.6;
  BlockingResult result = CanopyBlocking(data.dataset, options).value();
  EXPECT_GT(BlockingRecall(data.dataset, data.truth, result.pairs), 0.9);
  size_t n = data.dataset.size();
  EXPECT_LT(result.pairs.size(), n * (n - 1) / 4);
  EXPECT_GT(result.buckets, 1u);
}

TEST(CanopyBlockingTest, LooserThresholdNeverLowersRecall) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.2, 5);
  RemoveFrequentTerms(&data.dataset);
  CanopyBlockingOptions tight;
  tight.loose_threshold = 0.5;
  tight.tight_threshold = 0.8;
  CanopyBlockingOptions loose = tight;
  loose.loose_threshold = 0.1;
  double r_tight =
      BlockingRecall(data.dataset, data.truth,
                     CanopyBlocking(data.dataset, tight).value().pairs);
  double r_loose =
      BlockingRecall(data.dataset, data.truth,
                     CanopyBlocking(data.dataset, loose).value().pairs);
  EXPECT_GE(r_loose + 1e-12, r_tight);
}

TEST(CanopyBlockingTest, CrossSourceOnlyForTwoSourceData) {
  auto data = GenerateBenchmark(BenchmarkKind::kProduct, 0.08, 3);
  RemoveFrequentTerms(&data.dataset);
  BlockingResult result = CanopyBlocking(data.dataset, {}).value();
  for (const RecordPair& rp : result.pairs) {
    EXPECT_NE(data.dataset.record(rp.a).source,
              data.dataset.record(rp.b).source);
  }
}

TEST(CanopyBlockingTest, EveryRecordEndsInSomeCanopy) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 13);
  RemoveFrequentTerms(&data.dataset);
  // Number of canopies is at most the number of records and at least 1.
  BlockingResult result = CanopyBlocking(data.dataset, {}).value();
  EXPECT_GE(result.buckets, 1u);
  EXPECT_LE(result.buckets, data.dataset.size());
}

TEST(BlockingRecallTest, EmptyPairsZeroRecall) {
  auto data = GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 7);
  EXPECT_DOUBLE_EQ(BlockingRecall(data.dataset, data.truth, {}), 0.0);
}

}  // namespace
}  // namespace gter
