// Whole-pipeline integration tests: synthetic benchmark → preprocessing →
// candidate pairs → fusion framework vs baselines → evaluation — the same
// path the Table II harness takes, at reduced scale.

#include <cstdio>

#include <gtest/gtest.h>

#include "gter/gter.h"

namespace gter {
namespace {

struct Pipeline {
  GeneratedDataset data;
  PairSpace pairs;
  std::vector<bool> labels;
  uint64_t positives;

  Pipeline(BenchmarkKind kind, double scale, uint64_t seed)
      : data(GenerateBenchmark(kind, scale, seed)) {
    RemoveFrequentTerms(&data.dataset);
    pairs = PairSpace::Build(data.dataset);
    labels = LabelPairs(pairs, data.truth);
    positives = TotalPositives(data.dataset, data.truth);
  }

  double BestF1Of(const std::vector<double>& scores) const {
    return BestF1Threshold(scores, labels, positives).f1;
  }
};

TEST(EndToEndTest, FusionBeatsJaccardOnRestaurant) {
  Pipeline p(BenchmarkKind::kRestaurant, 0.2, 42);
  FusionConfig config;
  config.rounds = 3;
  config.cliquerank.max_steps = 15;
  FusionPipeline fusion(p.data.dataset, config);
  FusionResult result = fusion.Run().value();
  double fusion_f1 =
      EvaluatePairPredictions(p.pairs, result.matches, p.labels, p.positives)
          .F1();
  double jaccard_f1 = p.BestF1Of(JaccardScorer().Score(p.data.dataset, p.pairs));
  // Fusion uses the universal η with NO threshold tuning, yet must at least
  // approach the oracle-tuned Jaccard baseline.
  EXPECT_GT(fusion_f1, 0.7);
  EXPECT_GT(fusion_f1 + 0.12, jaccard_f1);
}

TEST(EndToEndTest, FusionBeatsUnsupervisedBaselinesOnPaper) {
  Pipeline p(BenchmarkKind::kPaper, 0.12, 42);
  FusionConfig config;
  config.rounds = 3;
  config.cliquerank.max_steps = 15;
  FusionPipeline fusion(p.data.dataset, config);
  FusionResult result = fusion.Run().value();
  double fusion_f1 =
      EvaluatePairPredictions(p.pairs, result.matches, p.labels, p.positives)
          .F1();
  double jaccard_f1 = p.BestF1Of(JaccardScorer().Score(p.data.dataset, p.pairs));
  double pagerank_f1 =
      p.BestF1Of(TwIdfPageRankScorer().Score(p.data.dataset, p.pairs));
  EXPECT_GT(fusion_f1, 0.6);
  // Table II shape: on the Paper dataset the fusion framework dominates
  // the PageRank baseline decisively.
  EXPECT_GT(fusion_f1, pagerank_f1);
  EXPECT_GT(fusion_f1 + 0.1, jaccard_f1);
}

TEST(EndToEndTest, TfIdfBeatsJaccardOnProduct) {
  Pipeline p(BenchmarkKind::kProduct, 0.15, 42);
  double jaccard = p.BestF1Of(JaccardScorer().Score(p.data.dataset, p.pairs));
  double tfidf = p.BestF1Of(TfIdfScorer().Score(p.data.dataset, p.pairs));
  // Table II shape: TF-IDF ≫ Jaccard on the product benchmark.
  EXPECT_GT(tfidf, jaccard);
}

TEST(EndToEndTest, ItersTermRankingBeatsPageRankOnSpearman) {
  // Table IV's shape: ITER's term ranking correlates with the oracle
  // score(t); PageRank's does not. Measured on the Paper benchmark whose
  // oracle scores are continuous (the Restaurant oracle is almost entirely
  // ties at 0 and 1, which dilutes any rank correlation).
  Pipeline p(BenchmarkKind::kPaper, 0.15, 42);
  BipartiteGraph graph = BipartiteGraph::Build(p.data.dataset, p.pairs);
  IterResult iter =
      RunIter(graph, std::vector<double>(p.pairs.size(), 1.0)).value();
  TwIdfPageRankScorer pagerank;
  pagerank.Score(p.data.dataset, p.pairs);
  auto oracle = OracleTermScores(graph, p.pairs, p.data.truth);

  std::vector<double> iter_w, pr_w, oracle_w;
  for (TermId t = 0; t < graph.num_terms(); ++t) {
    if (graph.PairsOfTerm(t).empty()) continue;
    iter_w.push_back(iter.term_weights[t]);
    pr_w.push_back(pagerank.term_salience()[t]);
    oracle_w.push_back(oracle[t]);
  }
  double rho_iter = SpearmanRho(iter_w, oracle_w);
  double rho_pagerank = SpearmanRho(pr_w, oracle_w);
  EXPECT_GT(rho_iter, 0.6);
  EXPECT_GT(rho_iter, rho_pagerank + 0.2);
}

TEST(EndToEndTest, IterSeparatesDiscriminativeFromNoiseTermsOnRestaurant) {
  // The Figure 4 property on Restaurant-like data: terms whose pairs all
  // match (oracle score 1) must receive much higher ITER weight than terms
  // whose pairs never match (oracle score 0).
  Pipeline p(BenchmarkKind::kRestaurant, 0.2, 42);
  BipartiteGraph graph = BipartiteGraph::Build(p.data.dataset, p.pairs);
  IterResult iter =
      RunIter(graph, std::vector<double>(p.pairs.size(), 1.0)).value();
  auto oracle = OracleTermScores(graph, p.pairs, p.data.truth);
  double sum_disc = 0.0, sum_noise = 0.0;
  size_t n_disc = 0, n_noise = 0;
  for (TermId t = 0; t < graph.num_terms(); ++t) {
    if (graph.PairsOfTerm(t).empty()) continue;
    if (oracle[t] >= 1.0) {
      sum_disc += iter.term_weights[t];
      ++n_disc;
    } else if (oracle[t] <= 0.0) {
      sum_noise += iter.term_weights[t];
      ++n_noise;
    }
  }
  ASSERT_GT(n_disc, 0u);
  ASSERT_GT(n_noise, 0u);
  EXPECT_GT(sum_disc / n_disc, 5.0 * sum_noise / n_noise);
}

TEST(EndToEndTest, UniversalEtaWorksAcrossDomains) {
  // The paper's selling point: the same α=20, S=20, η=0.98 settings work
  // on all three domains with no tuning.
  for (auto kind : {BenchmarkKind::kRestaurant, BenchmarkKind::kPaper}) {
    Pipeline p(kind, 0.1, 7);
    FusionConfig config;  // defaults = the paper's universal settings
    config.rounds = 2;
    config.cliquerank.max_steps = 10;
    FusionPipeline fusion(p.data.dataset, config);
    FusionResult result = fusion.Run().value();
    double f1 =
        EvaluatePairPredictions(p.pairs, result.matches, p.labels, p.positives)
            .F1();
    EXPECT_GT(f1, 0.55) << BenchmarkName(kind);
  }
}

TEST(EndToEndTest, CsvRoundTripPreservesResolution) {
  Pipeline p(BenchmarkKind::kRestaurant, 0.08, 11);
  std::string path = "/tmp/gter_e2e_roundtrip.csv";
  ASSERT_TRUE(SaveDatasetCsv(path, p.data.dataset, p.data.truth).ok());
  auto loaded = LoadDatasetCsv(path, "reloaded", 1);
  ASSERT_TRUE(loaded.ok());
  const auto& [ds2, truth2] = loaded.value();
  EXPECT_EQ(ds2.size(), p.data.dataset.size());
  EXPECT_EQ(TotalPositives(ds2, truth2),
            TotalPositives(p.data.dataset, p.data.truth));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gter
