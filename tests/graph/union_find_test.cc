#include "gter/graph/union_find.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(UnionFindTest, InitiallyAllSeparate) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  EXPECT_FALSE(uf.Connected(0, 1));
  EXPECT_TRUE(uf.Connected(2, 2));
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_EQ(uf.num_components(), 3u);
  EXPECT_FALSE(uf.Union(0, 1));  // already merged
  EXPECT_EQ(uf.num_components(), 3u);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(3, 4);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(2, 3));
}

TEST(UnionFindTest, SizeTracking) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(1, 2);
  EXPECT_EQ(uf.SizeOf(0), 3u);
  EXPECT_EQ(uf.SizeOf(2), 3u);
  EXPECT_EQ(uf.SizeOf(5), 1u);
}

TEST(UnionFindTest, ComponentLabelsAreDenseAndStable) {
  UnionFind uf(5);
  uf.Union(1, 3);
  uf.Union(2, 4);
  auto labels = uf.ComponentLabels();
  ASSERT_EQ(labels.size(), 5u);
  EXPECT_EQ(labels[0], 0u);  // smallest member order
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[3], 1u);
  EXPECT_EQ(labels[2], 2u);
  EXPECT_EQ(labels[4], 2u);
}

TEST(UnionFindTest, LargeChain) {
  constexpr size_t kN = 10000;
  UnionFind uf(kN);
  for (uint32_t i = 0; i + 1 < kN; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.num_components(), 1u);
  EXPECT_TRUE(uf.Connected(0, kN - 1));
  EXPECT_EQ(uf.SizeOf(kN / 2), kN);
}

}  // namespace
}  // namespace gter
