#include "gter/graph/bipartite_graph.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

// Three records: 0 "a b", 1 "a c", 2 "b c" → pairs (0,1) via a,
// (0,2) via b, (1,2) via c.
struct Fixture {
  Dataset ds{"test"};
  Fixture() {
    ds.AddRecord(0, "a b");
    ds.AddRecord(0, "a c");
    ds.AddRecord(0, "b c");
  }
};

TEST(BipartiteGraphTest, StructureMatchesSharedTerms) {
  Fixture f;
  PairSpace pairs = PairSpace::Build(f.ds);
  BipartiteGraph graph = BipartiteGraph::Build(f.ds, pairs);
  EXPECT_EQ(graph.num_pairs(), 3u);
  EXPECT_EQ(graph.num_terms(), f.ds.vocabulary().size());
  EXPECT_EQ(graph.num_edges(), 3u);  // each pair shares exactly one term

  PairId p01 = pairs.Find(0, 1);
  auto terms = graph.TermsOfPair(p01);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0], f.ds.vocabulary().Lookup("a"));
}

TEST(BipartiteGraphTest, TermToPairAdjacency) {
  Fixture f;
  PairSpace pairs = PairSpace::Build(f.ds);
  BipartiteGraph graph = BipartiteGraph::Build(f.ds, pairs);
  TermId a = f.ds.vocabulary().Lookup("a");
  auto adj = graph.PairsOfTerm(a);
  ASSERT_EQ(adj.size(), 1u);
  EXPECT_EQ(adj[0], pairs.Find(0, 1));
}

TEST(BipartiteGraphTest, MultiTermPair) {
  Dataset ds("test");
  ds.AddRecord(0, "x y z");
  ds.AddRecord(0, "x y w");
  PairSpace pairs = PairSpace::Build(ds);
  BipartiteGraph graph = BipartiteGraph::Build(ds, pairs);
  auto terms = graph.TermsOfPair(0);
  EXPECT_EQ(terms.size(), 2u);  // x and y
  EXPECT_TRUE(std::is_sorted(terms.begin(), terms.end()));
}

TEST(BipartiteGraphTest, PaperPtFormula) {
  // Term "t" in 4 records → P_t = 4·3/2 = 6 regardless of materialized
  // pair count.
  Dataset ds("test");
  for (int i = 0; i < 4; ++i) ds.AddRecord(0, "t");
  PairSpace pairs = PairSpace::Build(ds);
  BipartiteGraph graph = BipartiteGraph::Build(ds, pairs, PtMode::kPaper);
  TermId t = ds.vocabulary().Lookup("t");
  EXPECT_DOUBLE_EQ(graph.Pt(t), 6.0);
  EXPECT_EQ(graph.Nt(t), 4u);
}

TEST(BipartiteGraphTest, ConnectedPairsPtMode) {
  // Two-source: term "t" in 2+2 records, but only 4 cross pairs exist.
  Dataset ds("two", 2);
  ds.AddRecord(0, "t");
  ds.AddRecord(0, "t");
  ds.AddRecord(1, "t");
  ds.AddRecord(1, "t");
  PairSpace pairs = PairSpace::Build(ds);
  ASSERT_EQ(pairs.size(), 4u);
  BipartiteGraph paper = BipartiteGraph::Build(ds, pairs, PtMode::kPaper);
  BipartiteGraph connected =
      BipartiteGraph::Build(ds, pairs, PtMode::kConnectedPairs);
  TermId t = ds.vocabulary().Lookup("t");
  EXPECT_DOUBLE_EQ(paper.Pt(t), 6.0);      // 4·3/2
  EXPECT_DOUBLE_EQ(connected.Pt(t), 4.0);  // materialized cross pairs
}

TEST(BipartiteGraphTest, PtFloorIsOne) {
  // df=1 terms form no pairs; P_t must stay ≥ 1 to be a safe denominator.
  Dataset ds("test");
  ds.AddRecord(0, "solo shared");
  ds.AddRecord(0, "shared");
  PairSpace pairs = PairSpace::Build(ds);
  BipartiteGraph graph = BipartiteGraph::Build(ds, pairs);
  TermId solo = ds.vocabulary().Lookup("solo");
  EXPECT_DOUBLE_EQ(graph.Pt(solo), 1.0);
  EXPECT_TRUE(graph.PairsOfTerm(solo).empty());
}

}  // namespace
}  // namespace gter
