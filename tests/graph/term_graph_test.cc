#include "gter/graph/term_graph.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(TermGraphTest, WindowTwoConnectsAdjacentTokensOnly) {
  Dataset ds("test");
  ds.AddRecord(0, "a b c");
  TermGraph g = TermGraph::Build(ds, 2);
  TermId a = ds.vocabulary().Lookup("a");
  TermId b = ds.vocabulary().Lookup("b");
  TermId c = ds.vocabulary().Lookup("c");
  EXPECT_EQ(g.num_edges(), 2u);  // a-b, b-c
  auto nb = g.Neighbors(b);
  EXPECT_EQ(nb.size(), 2u);
  EXPECT_TRUE(std::binary_search(nb.begin(), nb.end(), a));
  EXPECT_TRUE(std::binary_search(nb.begin(), nb.end(), c));
  EXPECT_TRUE(g.Neighbors(a).size() == 1 && g.Neighbors(a)[0] == b);
  EXPECT_FALSE(std::binary_search(g.Neighbors(a).begin(),
                                  g.Neighbors(a).end(), c));
}

TEST(TermGraphTest, WindowThreeConnectsSkipOne) {
  Dataset ds("test");
  ds.AddRecord(0, "a b c");
  TermGraph g = TermGraph::Build(ds, 3);
  TermId a = ds.vocabulary().Lookup("a");
  TermId c = ds.vocabulary().Lookup("c");
  EXPECT_EQ(g.num_edges(), 3u);  // triangle
  EXPECT_TRUE(std::binary_search(g.Neighbors(a).begin(),
                                 g.Neighbors(a).end(), c));
}

TEST(TermGraphTest, RepeatedCooccurrenceCollapsesToOneEdge) {
  Dataset ds("test");
  ds.AddRecord(0, "x y");
  ds.AddRecord(0, "x y");
  ds.AddRecord(0, "y x");
  TermGraph g = TermGraph::Build(ds, 2);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(TermGraphTest, SelfCooccurrenceIgnored) {
  Dataset ds("test");
  ds.AddRecord(0, "z z z");
  TermGraph g = TermGraph::Build(ds, 2);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(TermGraphTest, DegreeMatchesNeighbors) {
  Dataset ds("test");
  ds.AddRecord(0, "hub p");
  ds.AddRecord(0, "hub q");
  ds.AddRecord(0, "hub r");
  TermGraph g = TermGraph::Build(ds, 2);
  TermId hub = ds.vocabulary().Lookup("hub");
  EXPECT_EQ(g.Degree(hub), 3u);
  EXPECT_EQ(g.Neighbors(hub).size(), 3u);
}

TEST(TermGraphTest, EmptyDataset) {
  Dataset ds("test");
  TermGraph g = TermGraph::Build(ds, 3);
  EXPECT_EQ(g.num_terms(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace gter
