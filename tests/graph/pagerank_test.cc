#include "gter/graph/pagerank.h"

#include <cmath>

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(PageRankTest, HubScoresHigherThanLeaves) {
  // Star graph: "hub" co-occurs with many distinct terms.
  Dataset ds("test");
  ds.AddRecord(0, "hub p");
  ds.AddRecord(0, "hub q");
  ds.AddRecord(0, "hub r");
  ds.AddRecord(0, "hub s");
  TermGraph g = TermGraph::Build(ds, 2);
  auto scores = PageRank(g);
  TermId hub = ds.vocabulary().Lookup("hub");
  for (const char* leaf : {"p", "q", "r", "s"}) {
    EXPECT_GT(scores[hub], scores[ds.vocabulary().Lookup(leaf)]);
  }
}

TEST(PageRankTest, IsolatedTermGetsTeleportMass) {
  Dataset ds("test");
  ds.AddRecord(0, "solo");
  ds.AddRecord(0, "a b");
  TermGraph g = TermGraph::Build(ds, 2);
  auto scores = PageRank(g);
  TermId solo = ds.vocabulary().Lookup("solo");
  EXPECT_NEAR(scores[solo], 0.15, 1e-9);
}

TEST(PageRankTest, SymmetricGraphGivesEqualScores) {
  Dataset ds("test");
  ds.AddRecord(0, "a b");
  TermGraph g = TermGraph::Build(ds, 2);
  auto scores = PageRank(g);
  EXPECT_NEAR(scores[0], scores[1], 1e-9);
}

TEST(PageRankTest, ConvergesToStationaryPoint) {
  Dataset ds("test");
  ds.AddRecord(0, "a b c d a c");
  TermGraph g = TermGraph::Build(ds, 3);
  PageRankOptions options;
  options.tolerance = 1e-12;
  auto scores = PageRank(g, options);
  // Verify the fixed point: s = (1-φ) + φ Σ s(nb)/deg(nb).
  for (TermId t = 0; t < g.num_terms(); ++t) {
    double acc = 0.0;
    for (TermId nb : g.Neighbors(t)) {
      acc += scores[nb] / static_cast<double>(g.Degree(nb));
    }
    EXPECT_NEAR(scores[t], 0.15 + 0.85 * acc, 1e-8);
  }
}

TEST(PageRankTest, ReceiverDegreeVariantRuns) {
  Dataset ds("test");
  ds.AddRecord(0, "a b c");
  TermGraph g = TermGraph::Build(ds, 2);
  PageRankOptions options;
  options.divide_by_receiver_degree = true;  // the paper's literal Eq. 3
  auto scores = PageRank(g, options);
  for (double s : scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GT(s, 0.0);
  }
}

TEST(PageRankTest, DampingZeroGivesUniformOne) {
  Dataset ds("test");
  ds.AddRecord(0, "a b");
  TermGraph g = TermGraph::Build(ds, 2);
  PageRankOptions options;
  options.damping = 0.0;
  auto scores = PageRank(g, options);
  for (double s : scores) EXPECT_NEAR(s, 1.0, 1e-12);
}

}  // namespace
}  // namespace gter
