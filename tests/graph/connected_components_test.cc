#include "gter/graph/connected_components.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(ConnectedComponentsTest, NoEdgesAllSingletons) {
  auto labels = ConnectedComponents(4, {});
  ASSERT_EQ(labels.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) EXPECT_EQ(labels[i], i);
}

TEST(ConnectedComponentsTest, TwoComponents) {
  auto labels = ConnectedComponents(5, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(ConnectedComponentsTest, GroupByComponent) {
  auto labels = ConnectedComponents(5, {{0, 2}, {1, 3}});
  auto groups = GroupByComponent(labels);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(groups[2], (std::vector<uint32_t>{4}));
}

TEST(ConnectedComponentsTest, SelfLoopIsHarmless) {
  auto labels = ConnectedComponents(2, {{0, 0}});
  EXPECT_NE(labels[0], labels[1]);
}

}  // namespace
}  // namespace gter
