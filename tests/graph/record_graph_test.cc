#include "gter/graph/record_graph.h"

#include <cmath>

#include <gtest/gtest.h>

namespace gter {
namespace {

// Triangle of three records all sharing one term, with distinct weights.
struct Fixture {
  Dataset ds{"test"};
  PairSpace pairs;
  std::vector<double> sims;
  Fixture() {
    ds.AddRecord(0, "t");
    ds.AddRecord(0, "t");
    ds.AddRecord(0, "t");
    pairs = PairSpace::Build(ds);
    sims.assign(pairs.size(), 0.0);
    sims[pairs.Find(0, 1)] = 0.9;
    sims[pairs.Find(0, 2)] = 0.3;
    sims[pairs.Find(1, 2)] = 0.6;
  }
};

TEST(RecordGraphTest, StructureAndWeights) {
  Fixture f;
  RecordGraph g = RecordGraph::Build(f.ds.size(), f.pairs, f.sims);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 0.9);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 0.9);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 0.3);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 0.6);
}

TEST(RecordGraphTest, NeighborsSortedWithParallelArrays) {
  Fixture f;
  RecordGraph g = RecordGraph::Build(f.ds.size(), f.pairs, f.sims);
  auto neigh = g.Neighbors(0);
  ASSERT_EQ(neigh.size(), 2u);
  EXPECT_EQ(neigh[0], 1u);
  EXPECT_EQ(neigh[1], 2u);
  auto wts = g.Weights(0);
  EXPECT_DOUBLE_EQ(wts[0], 0.9);
  EXPECT_DOUBLE_EQ(wts[1], 0.3);
  auto eps = g.EdgePairIds(0);
  EXPECT_EQ(eps[0], f.pairs.Find(0, 1));
  EXPECT_EQ(eps[1], f.pairs.Find(0, 2));
}

TEST(RecordGraphTest, HasEdgeAndDensity) {
  Fixture f;
  RecordGraph g = RecordGraph::Build(f.ds.size(), f.pairs, f.sims);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_DOUBLE_EQ(g.Density(), 1.0);  // complete triangle
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 0), 0.0);
}

TEST(RecordGraphTest, IsolatedNode) {
  Dataset ds("test");
  ds.AddRecord(0, "t");
  ds.AddRecord(0, "t");
  ds.AddRecord(0, "alone");
  PairSpace pairs = PairSpace::Build(ds);
  RecordGraph g = RecordGraph::Build(ds.size(), pairs, {0.5});
  EXPECT_TRUE(g.Neighbors(2).empty());
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(RecordGraphTest, NegativeSimilaritiesClampToZero) {
  Fixture f;
  f.sims[0] = -2.0;
  RecordGraph g = RecordGraph::Build(f.ds.size(), f.pairs, f.sims);
  const RecordPair& rp = f.pairs.pair(0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(rp.a, rp.b), 0.0);
}

TEST(RecordGraphTest, AdjacencyMatrixIsSymmetricBinary) {
  Fixture f;
  RecordGraph g = RecordGraph::Build(f.ds.size(), f.pairs, f.sims);
  CsrMatrix adj = g.AdjacencyMatrix();
  EXPECT_EQ(adj.nnz(), 6u);  // 3 undirected edges, both directions
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(adj.At(i, j), i == j ? 0.0 : 1.0);
      EXPECT_DOUBLE_EQ(adj.At(i, j), adj.At(j, i));
    }
  }
}

TEST(RecordGraphTest, TransitionMatrixRowsAreStochastic) {
  Fixture f;
  RecordGraph g = RecordGraph::Build(f.ds.size(), f.pairs, f.sims);
  for (double alpha : {1.0, 5.0, 20.0}) {
    CsrMatrix mt = g.TransitionMatrix(alpha);
    for (size_t r = 0; r < 3; ++r) {
      double sum = 0.0;
      for (double v : mt.RowValues(r)) sum += v;
      EXPECT_NEAR(sum, 1.0, 1e-12) << "alpha=" << alpha;
    }
  }
}

TEST(RecordGraphTest, LargerAlphaSharpensTransitions) {
  Fixture f;
  RecordGraph g = RecordGraph::Build(f.ds.size(), f.pairs, f.sims);
  // From node 0: neighbor 1 has weight 0.9, neighbor 2 has 0.3.
  CsrMatrix soft = g.TransitionMatrix(1.0);
  CsrMatrix sharp = g.TransitionMatrix(20.0);
  EXPECT_GT(sharp.At(0, 1), soft.At(0, 1));
  EXPECT_LT(sharp.At(0, 2), soft.At(0, 2));
  EXPECT_GT(sharp.At(0, 1), 0.999);  // (0.3/0.9)^20 ≈ 3e-10
}

TEST(RecordGraphTest, ZeroWeightRowFallsBackToUniform) {
  Dataset ds("test");
  ds.AddRecord(0, "t");
  ds.AddRecord(0, "t");
  ds.AddRecord(0, "t");
  PairSpace pairs = PairSpace::Build(ds);
  std::vector<double> zeros(pairs.size(), 0.0);
  RecordGraph g = RecordGraph::Build(ds.size(), pairs, zeros);
  CsrMatrix mt = g.TransitionMatrix(20.0);
  EXPECT_NEAR(mt.At(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(mt.At(0, 2), 0.5, 1e-12);
}

TEST(RecordGraphTest, HugeWeightsDoNotOverflowAtHighAlpha) {
  Fixture f;
  f.sims = {500.0, 400.0, 450.0};  // s^α would overflow without row-max trick
  RecordGraph g = RecordGraph::Build(f.ds.size(), f.pairs, f.sims);
  CsrMatrix mt = g.TransitionMatrix(100.0);
  for (size_t r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (double v : mt.RowValues(r)) {
      EXPECT_TRUE(std::isfinite(v));
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace gter
