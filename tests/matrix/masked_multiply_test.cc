#include "gter/matrix/masked_multiply.h"

#include "gter/common/random.h"
#include "gter/common/thread_pool.h"
#include "gter/matrix/gemm.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

/// Random symmetric adjacency pattern over n nodes with edge prob `p`,
/// plus a transition matrix with the same structure.
struct Fixture {
  CsrMatrix pattern;
  CsrMatrix trans;
  size_t n;
};

Fixture MakeFixture(size_t n, double edge_prob, uint64_t seed) {
  Rng rng(seed);
  std::vector<CsrMatrix::Triplet> pat, tr;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      if (!rng.Bernoulli(edge_prob)) continue;
      pat.push_back({i, j, 1.0});
      pat.push_back({j, i, 1.0});
      double w1 = rng.OpenUniformDouble();
      double w2 = rng.OpenUniformDouble();
      tr.push_back({i, j, w1});
      tr.push_back({j, i, w2});
    }
  }
  Fixture f;
  f.n = n;
  f.pattern = CsrMatrix::FromTriplets(n, n, std::move(pat));
  f.trans = CsrMatrix::FromTriplets(n, n, std::move(tr));
  f.trans.NormalizeRows();
  return f;
}

TEST(MaskedMultiplyTest, MatchesDenseProductOnPattern) {
  Fixture f = MakeFixture(20, 0.3, 42);
  // Current iterate: random values on the pattern.
  Rng rng(7);
  std::vector<double> cur(f.pattern.nnz());
  for (auto& v : cur) v = rng.UniformDouble();

  // Reference: dense M_t × (M ⊙ M_n).
  DenseMatrix m(f.n, f.n, 0.0);
  ScatterToDense(f.pattern, cur.data(), m.data());
  DenseMatrix masked = m.Hadamard(f.pattern.ToDense());
  DenseMatrix ref = Multiply(f.trans.ToDense(), masked);

  // Masked kernel.
  std::vector<double> scratch(f.n * f.n, 0.0);
  ScatterToDense(f.pattern, cur.data(), scratch.data());
  std::vector<double> out(f.pattern.nnz(), 0.0);
  ComputeMaskedProduct(f.trans, scratch.data(), f.pattern, out.data());

  size_t pos = 0;
  for (size_t i = 0; i < f.n; ++i) {
    for (uint32_t j : f.pattern.RowCols(i)) {
      EXPECT_NEAR(out[pos], ref(i, j), 1e-12) << i << "," << j;
      ++pos;
    }
  }
}

TEST(MaskedMultiplyTest, ParallelMatchesSequential) {
  Fixture f = MakeFixture(30, 0.2, 5);
  Rng rng(9);
  std::vector<double> cur(f.pattern.nnz());
  for (auto& v : cur) v = rng.UniformDouble();
  std::vector<double> scratch(f.n * f.n, 0.0);
  ScatterToDense(f.pattern, cur.data(), scratch.data());

  std::vector<double> seq(f.pattern.nnz(), 0.0);
  GTER_CHECK_OK(
      ComputeMaskedProduct(f.trans, scratch.data(), f.pattern, seq.data()));
  ThreadPool pool(4);
  std::vector<double> par(f.pattern.nnz(), 0.0);
  GTER_CHECK_OK(ComputeMaskedProduct(f.trans, scratch.data(), f.pattern,
                                     par.data(),
                                     ExecContext::WithPool(&pool)));
  for (size_t i = 0; i < seq.size(); ++i) EXPECT_DOUBLE_EQ(seq[i], par[i]);
}

TEST(MaskedMultiplyTest, CsrGatherMatchesDenseReference) {
  Fixture f = MakeFixture(25, 0.3, 17);
  Rng rng(13);
  std::vector<double> cur(f.pattern.nnz());
  for (auto& v : cur) v = rng.UniformDouble();

  // Reference through the dense formulation.
  DenseMatrix m(f.n, f.n, 0.0);
  ScatterToDense(f.pattern, cur.data(), m.data());
  DenseMatrix ref = Multiply(f.trans.ToDense(), m.Hadamard(f.pattern.ToDense()));

  std::vector<double> out(f.pattern.nnz(), -1.0);
  ComputeMaskedProductCsr(f.trans, cur.data(), f.pattern, out.data());
  size_t pos = 0;
  for (size_t i = 0; i < f.n; ++i) {
    for (uint32_t j : f.pattern.RowCols(i)) {
      EXPECT_NEAR(out[pos], ref(i, j), 1e-12) << i << "," << j;
      ++pos;
    }
  }
}

TEST(MaskedMultiplyTest, CsrGatherHandlesIsolatedRows) {
  // Node 2 is isolated; its (empty) pattern row must stay untouched and
  // gathering across it must not read out of range.
  CsrMatrix pattern =
      CsrMatrix::FromTriplets(3, 3, {{0, 1, 1.0}, {1, 0, 1.0}});
  CsrMatrix trans = CsrMatrix::FromTriplets(3, 3, {{0, 1, 1.0}, {1, 0, 1.0}});
  std::vector<double> cur = {0.5, 0.5};
  std::vector<double> out(2, -1.0);
  ComputeMaskedProductCsr(trans, cur.data(), pattern, out.data());
  // out[(0,1)] = trans[0,1] · prev[1,1] but (1,1) is off-pattern → 0.
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(MaskedMultiplyTest, ScatterOverwritesPatternPositions) {
  Fixture f = MakeFixture(10, 0.4, 11);
  std::vector<double> ones(f.pattern.nnz(), 1.0);
  std::vector<double> twos(f.pattern.nnz(), 2.0);
  std::vector<double> dense(f.n * f.n, 0.0);
  ScatterToDense(f.pattern, ones.data(), dense.data());
  ScatterToDense(f.pattern, twos.data(), dense.data());
  double total = 0.0;
  for (double v : dense) total += v;
  EXPECT_DOUBLE_EQ(total, 2.0 * static_cast<double>(f.pattern.nnz()));
}

TEST(MaskedMultiplyTest, EmptyPatternRowsAreSkipped) {
  // Node 2 is isolated.
  CsrMatrix pattern =
      CsrMatrix::FromTriplets(3, 3, {{0, 1, 1.0}, {1, 0, 1.0}});
  CsrMatrix trans = CsrMatrix::FromTriplets(3, 3, {{0, 1, 1.0}, {1, 0, 1.0}});
  std::vector<double> scratch(9, 0.0);
  std::vector<double> cur = {0.5, 0.5};
  ScatterToDense(pattern, cur.data(), scratch.data());
  std::vector<double> out(2, -1.0);
  ComputeMaskedProduct(trans, scratch.data(), pattern, out.data());
  // out[(0,1)] = trans[0,1] * scratch[1*3+1] = 1.0 * 0 = 0
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

}  // namespace
}  // namespace gter
