#include "gter/matrix/dense_matrix.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(DenseMatrixTest, ConstructionAndFill) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
  m.Fill(0.25);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.25);
}

TEST(DenseMatrixTest, ElementAccessIsRowMajor) {
  DenseMatrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  EXPECT_DOUBLE_EQ(m.data()[0], 1);
  EXPECT_DOUBLE_EQ(m.data()[1], 2);
  EXPECT_DOUBLE_EQ(m.data()[2], 3);
  EXPECT_DOUBLE_EQ(m.row(1)[1], 4);
}

TEST(DenseMatrixTest, Transposed) {
  DenseMatrix m(2, 3);
  int v = 0;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) m(r, c) = ++v;
  }
  DenseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(t(c, r), m(r, c));
  }
}

TEST(DenseMatrixTest, Hadamard) {
  DenseMatrix a(2, 2, 3.0);
  DenseMatrix b(2, 2, 0.5);
  DenseMatrix h = a.Hadamard(b);
  EXPECT_DOUBLE_EQ(h(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(h(1, 1), 1.5);
}

TEST(DenseMatrixTest, AddAndScale) {
  DenseMatrix a(2, 2, 1.0);
  DenseMatrix b(2, 2, 2.0);
  a.Add(b);
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
  a.Scale(2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 6.0);
}

TEST(DenseMatrixTest, MaxAbsDiff) {
  DenseMatrix a(2, 2, 1.0);
  DenseMatrix b(2, 2, 1.0);
  b(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 3.0);
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(a), 0.0);
}

TEST(DenseMatrixTest, Sum) {
  DenseMatrix m(3, 3, 2.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 18.0);
}

TEST(DenseMatrixTest, Identity) {
  DenseMatrix id = DenseMatrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(DenseMatrixDeathTest, MismatchedHadamardAborts) {
  DenseMatrix a(2, 2), b(2, 3);
  EXPECT_DEATH(a.Hadamard(b), "GTER_CHECK");
}

}  // namespace
}  // namespace gter
