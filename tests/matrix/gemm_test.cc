#include "gter/matrix/gemm.h"

#include "gter/common/random.h"
#include "gter/common/thread_pool.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

DenseMatrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  DenseMatrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m(r, c) = rng->UniformDouble(-1.0, 1.0);
    }
  }
  return m;
}

DenseMatrix NaiveMultiply(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c(a.rows(), b.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  }
  return c;
}

TEST(GemmTest, SmallKnownProduct) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  DenseMatrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  DenseMatrix c = Multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(GemmTest, IdentityIsNeutral) {
  Rng rng(1);
  DenseMatrix a = RandomMatrix(7, 7, &rng);
  DenseMatrix c = Multiply(a, DenseMatrix::Identity(7));
  EXPECT_LT(c.MaxAbsDiff(a), 1e-12);
  DenseMatrix d = Multiply(DenseMatrix::Identity(7), a);
  EXPECT_LT(d.MaxAbsDiff(a), 1e-12);
}

TEST(GemmTest, MatchesNaiveOnRectangular) {
  Rng rng(2);
  DenseMatrix a = RandomMatrix(13, 31, &rng);
  DenseMatrix b = RandomMatrix(31, 9, &rng);
  DenseMatrix fast = Multiply(a, b);
  DenseMatrix ref = NaiveMultiply(a, b);
  EXPECT_LT(fast.MaxAbsDiff(ref), 1e-10);
}

TEST(GemmTest, MatchesNaiveAcrossBlockBoundaries) {
  // Sizes chosen to straddle the kernel's kBlockK=64 / kBlockN=256 panels.
  Rng rng(3);
  DenseMatrix a = RandomMatrix(70, 130, &rng);
  DenseMatrix b = RandomMatrix(130, 300, &rng);
  DenseMatrix fast = Multiply(a, b);
  DenseMatrix ref = NaiveMultiply(a, b);
  EXPECT_LT(fast.MaxAbsDiff(ref), 1e-9);
}

TEST(GemmTest, ParallelMatchesSequential) {
  Rng rng(4);
  DenseMatrix a = RandomMatrix(64, 64, &rng);
  DenseMatrix b = RandomMatrix(64, 64, &rng);
  ThreadPool pool(4);
  DenseMatrix with_pool = Multiply(a, b, ExecContext::WithPool(&pool));
  DenseMatrix without = Multiply(a, b);
  EXPECT_DOUBLE_EQ(with_pool.MaxAbsDiff(without), 0.0);
}

TEST(GemmTest, OneByOne) {
  DenseMatrix a(1, 1, 3.0), b(1, 1, 4.0);
  EXPECT_DOUBLE_EQ(Multiply(a, b)(0, 0), 12.0);
}

TEST(GemmTest, ZeroMatrixYieldsZero) {
  Rng rng(5);
  DenseMatrix a = RandomMatrix(5, 5, &rng);
  DenseMatrix zero(5, 5, 0.0);
  EXPECT_DOUBLE_EQ(Multiply(a, zero).Sum(), 0.0);
}

TEST(GemmDeathTest, ShapeMismatchAborts) {
  DenseMatrix a(2, 3), b(4, 2), c;
  EXPECT_DEATH(Gemm(a, b, &c), "GTER_CHECK");
}

TEST(GemmDeathTest, AliasedOutputAborts) {
  // Gemm zero-initializes *c before reading a/b, so c aliasing an input
  // would silently compute garbage; it must abort instead.
  DenseMatrix a(3, 3, 1.0), b(3, 3, 1.0);
  EXPECT_DEATH(Gemm(a, b, &a), "GTER_CHECK");
  EXPECT_DEATH(Gemm(a, b, &b), "GTER_CHECK");
}

}  // namespace
}  // namespace gter
