#include "gter/matrix/csr_matrix.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

CsrMatrix SmallMatrix() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  return CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {2, 0, 3.0}, {2, 1, 4.0}});
}

TEST(CsrMatrixTest, BuildAndShape) {
  CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 4u);
}

TEST(CsrMatrixTest, RowAccessSortedByColumn) {
  CsrMatrix m = CsrMatrix::FromTriplets(2, 4, {{0, 3, 1.0}, {0, 1, 2.0}});
  auto cols = m.RowCols(0);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 1u);
  EXPECT_EQ(cols[1], 3u);
  EXPECT_DOUBLE_EQ(m.RowValues(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(m.RowValues(0)[1], 1.0);
}

TEST(CsrMatrixTest, DuplicateTripletsAreSummed) {
  CsrMatrix m = CsrMatrix::FromTriplets(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 4.0);
}

TEST(CsrMatrixTest, AtReturnsZeroOffPattern) {
  CsrMatrix m = SmallMatrix();
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 4.0);
}

TEST(CsrMatrixTest, PositionOf) {
  CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.PositionOf(0, 0), 0);
  EXPECT_EQ(m.PositionOf(0, 2), 1);
  EXPECT_EQ(m.PositionOf(2, 0), 2);
  EXPECT_EQ(m.PositionOf(0, 1), -1);
  EXPECT_EQ(m.PositionOf(1, 0), -1);
}

TEST(CsrMatrixTest, EmptyRowHasEmptySpans) {
  CsrMatrix m = SmallMatrix();
  EXPECT_TRUE(m.RowCols(1).empty());
  EXPECT_TRUE(m.RowValues(1).empty());
}

TEST(CsrMatrixTest, MultiplyVector) {
  CsrMatrix m = SmallMatrix();
  std::vector<double> x = {1.0, 2.0, 3.0};
  auto y = m.MultiplyVector(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 1 * 1 + 2 * 3);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 3 * 1 + 4 * 2);
}

TEST(CsrMatrixTest, ToDenseRoundTrip) {
  CsrMatrix m = SmallMatrix();
  DenseMatrix d = m.ToDense();
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(d(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 0.0);
}

TEST(CsrMatrixTest, NormalizeRowsMakesStochastic) {
  CsrMatrix m = SmallMatrix();
  m.NormalizeRows();
  EXPECT_DOUBLE_EQ(m.At(0, 0) + m.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.At(2, 0) + m.At(2, 1), 1.0);
  EXPECT_NEAR(m.At(0, 0), 1.0 / 3.0, 1e-12);
}

TEST(CsrMatrixTest, NormalizeSkipsEmptyAndZeroRows) {
  CsrMatrix m = CsrMatrix::FromTriplets(2, 2, {{0, 0, 0.0}});
  m.NormalizeRows();  // must not divide by zero
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CsrMatrix m = CsrMatrix::FromTriplets(3, 3, {});
  EXPECT_EQ(m.nnz(), 0u);
  auto y = m.MultiplyVector({1, 2, 3});
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CsrMatrixTest, ExplicitZerosAreStructural) {
  CsrMatrix m = CsrMatrix::FromTriplets(1, 2, {{0, 1, 0.0}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.PositionOf(0, 1), 0);
}

}  // namespace
}  // namespace gter
