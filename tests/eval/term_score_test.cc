#include "gter/eval/term_score.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(TermScoreTest, DiscriminativeTermScoresOne) {
  // "model123" appears only in the two matching records.
  Dataset ds("test");
  ds.AddRecord(0, "model123 common");
  ds.AddRecord(0, "model123 common");
  ds.AddRecord(0, "common other");
  GroundTruth truth({0, 0, 1});
  PairSpace pairs = PairSpace::Build(ds);
  BipartiteGraph graph = BipartiteGraph::Build(ds, pairs);
  auto scores = OracleTermScores(graph, pairs, truth);
  TermId model = ds.vocabulary().Lookup("model123");
  TermId common = ds.vocabulary().Lookup("common");
  EXPECT_DOUBLE_EQ(scores[model], 1.0);
  // "common" connects 3 pairs, 1 matching → 1/3.
  EXPECT_NEAR(scores[common], 1.0 / 3.0, 1e-12);
}

TEST(TermScoreTest, TermWithNoPairsScoresZero) {
  Dataset ds("test");
  ds.AddRecord(0, "solo shared");
  ds.AddRecord(0, "shared");
  GroundTruth truth({0, 1});
  PairSpace pairs = PairSpace::Build(ds);
  BipartiteGraph graph = BipartiteGraph::Build(ds, pairs);
  auto scores = OracleTermScores(graph, pairs, truth);
  EXPECT_DOUBLE_EQ(scores[ds.vocabulary().Lookup("solo")], 0.0);
}

TEST(TermScoreTest, StopwordLikeTermScoresLow) {
  Dataset ds("test");
  // 6 records sharing "the"; only one matching pair.
  for (int i = 0; i < 6; ++i) {
    ds.AddRecord(0, "the r" + std::to_string(i / 5));  // records 0-4 vs 5
  }
  GroundTruth truth({0, 1, 2, 3, 4, 4});
  PairSpace pairs = PairSpace::Build(ds);
  BipartiteGraph graph = BipartiteGraph::Build(ds, pairs);
  auto scores = OracleTermScores(graph, pairs, truth);
  TermId the = ds.vocabulary().Lookup("the");
  EXPECT_NEAR(scores[the], 1.0 / 15.0, 1e-12);
}

}  // namespace
}  // namespace gter
