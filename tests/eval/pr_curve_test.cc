#include "gter/eval/pr_curve.h"

#include <gtest/gtest.h>

#include "gter/common/random.h"

namespace gter {
namespace {

TEST(PrCurveTest, PerfectRankingReachesFullRecallAtFullPrecision) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<bool> labels = {true, true, false, false};
  auto curve = ComputePrCurve(scores, labels, 2);
  ASSERT_FALSE(curve.empty());
  // At the second point (threshold 0.8) precision 1, recall 1.
  bool found = false;
  for (const PrPoint& pt : curve) {
    if (pt.recall == 1.0 && pt.precision == 1.0) found = true;
  }
  EXPECT_TRUE(found);
  // Final point: everything predicted — precision = 2/4, recall = 1.
  EXPECT_DOUBLE_EQ(curve.back().precision, 0.5);
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
}

TEST(PrCurveTest, RecallIsMonotoneNonDecreasing) {
  Rng rng(3);
  std::vector<double> scores(300);
  std::vector<bool> labels(300);
  uint64_t positives = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    labels[i] = rng.Bernoulli(0.2);
    positives += labels[i];
    scores[i] = rng.UniformDouble();
  }
  auto curve = ComputePrCurve(scores, labels, positives);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall + 1e-12, curve[i - 1].recall);
    EXPECT_LE(curve[i].threshold, curve[i - 1].threshold + 1e-12);
  }
}

TEST(PrCurveTest, UnreachablePositivesCapRecall) {
  std::vector<double> scores = {0.9};
  std::vector<bool> labels = {true};
  auto curve = ComputePrCurve(scores, labels, 4);
  EXPECT_DOUBLE_EQ(curve.back().recall, 0.25);
}

TEST(PrCurveTest, DownsamplingKeepsEndpoints) {
  Rng rng(5);
  std::vector<double> scores(5000);
  std::vector<bool> labels(5000);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.UniformDouble();
    labels[i] = rng.Bernoulli(0.1);
  }
  auto full = ComputePrCurve(scores, labels, 500, 1 << 20);
  auto sampled = ComputePrCurve(scores, labels, 500, 50);
  ASSERT_LE(sampled.size(), 50u);
  EXPECT_DOUBLE_EQ(sampled.front().threshold, full.front().threshold);
  EXPECT_DOUBLE_EQ(sampled.back().recall, full.back().recall);
}

TEST(PrCurveTest, TiedScoresCollapseToOnePoint) {
  std::vector<double> scores = {0.5, 0.5, 0.5};
  std::vector<bool> labels = {true, false, true};
  auto curve = ComputePrCurve(scores, labels, 2);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_NEAR(curve[0].precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0);
}

TEST(AveragePrecisionTest, PerfectRankingIsOne) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<bool> labels = {true, true, false, false};
  EXPECT_DOUBLE_EQ(AveragePrecision(scores, labels, 2), 1.0);
}

TEST(AveragePrecisionTest, WorstRankingIsLow) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<bool> labels = {false, false, true, true};
  // AP = (1/3 + 2/4)/2 = 5/12.
  EXPECT_NEAR(AveragePrecision(scores, labels, 2), 5.0 / 12.0, 1e-12);
}

TEST(AveragePrecisionTest, MissingPositivesLowerAp) {
  std::vector<double> scores = {0.9};
  std::vector<bool> labels = {true};
  EXPECT_DOUBLE_EQ(AveragePrecision(scores, labels, 2), 0.5);
}

TEST(AveragePrecisionTest, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.5}, {false}, 0), 0.0);
}

}  // namespace
}  // namespace gter
