#include "gter/eval/cluster_metrics.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(ClusterMetricsTest, PerfectClustering) {
  GroundTruth truth({0, 0, 1, 1, 2});
  auto eval = EvaluateClustering({0, 0, 1, 1, 2}, truth);
  EXPECT_DOUBLE_EQ(eval.pairwise_precision, 1.0);
  EXPECT_DOUBLE_EQ(eval.pairwise_recall, 1.0);
  EXPECT_DOUBLE_EQ(eval.pairwise_f1, 1.0);
  EXPECT_NEAR(eval.adjusted_rand_index, 1.0, 1e-12);
  EXPECT_EQ(eval.num_predicted_clusters, 3u);
}

TEST(ClusterMetricsTest, AllSingletonsPredicted) {
  GroundTruth truth({0, 0, 1, 1});
  auto eval = EvaluateClustering({0, 1, 2, 3}, truth);
  EXPECT_DOUBLE_EQ(eval.pairwise_recall, 0.0);
  EXPECT_DOUBLE_EQ(eval.pairwise_f1, 0.0);
}

TEST(ClusterMetricsTest, EverythingMergedPredicted) {
  GroundTruth truth({0, 0, 1, 1});
  auto eval = EvaluateClustering({0, 0, 0, 0}, truth);
  EXPECT_DOUBLE_EQ(eval.pairwise_recall, 1.0);
  EXPECT_NEAR(eval.pairwise_precision, 2.0 / 6.0, 1e-12);
  EXPECT_LT(eval.adjusted_rand_index, 0.1);
}

TEST(ClusterMetricsTest, PartialOverlap) {
  GroundTruth truth({0, 0, 0, 1});
  // Predict {0,1}, {2,3}: together-pairs predicted = 2, correct = 1 (0-1).
  auto eval = EvaluateClustering({0, 0, 1, 1}, truth);
  EXPECT_DOUBLE_EQ(eval.pairwise_precision, 0.5);
  EXPECT_NEAR(eval.pairwise_recall, 1.0 / 3.0, 1e-12);
}

TEST(ClusterMetricsTest, LabelPermutationInvariance) {
  GroundTruth truth({0, 0, 1, 1, 2});
  auto a = EvaluateClustering({0, 0, 1, 1, 2}, truth);
  auto b = EvaluateClustering({7, 7, 3, 3, 9}, truth);
  EXPECT_DOUBLE_EQ(a.pairwise_f1, b.pairwise_f1);
  EXPECT_DOUBLE_EQ(a.adjusted_rand_index, b.adjusted_rand_index);
}

TEST(ClustersFromMatchesTest, TransitiveClosure) {
  auto labels = ClustersFromMatches(5, {{0, 1}, {1, 2}});
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[3], labels[4]);
}

TEST(ClustersFromMatchesTest, NoMatches) {
  auto labels = ClustersFromMatches(3, {});
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[2], 2u);
}

}  // namespace
}  // namespace gter
