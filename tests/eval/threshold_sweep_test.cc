#include "gter/eval/threshold_sweep.h"

#include <gtest/gtest.h>

#include "gter/common/random.h"

namespace gter {
namespace {

TEST(ThresholdSweepTest, PerfectSeparationFindsPerfectF1) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<bool> labels = {true, true, false, false};
  SweepResult r = BestF1Threshold(scores, labels, 2);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
  EXPECT_GT(r.threshold, 0.2);
  EXPECT_LE(r.threshold, 0.8);
}

TEST(ThresholdSweepTest, OverlappingScores) {
  // One negative above one positive: best F1 < 1.
  std::vector<double> scores = {0.9, 0.5, 0.7, 0.1};
  std::vector<bool> labels = {true, true, false, false};
  SweepResult r = BestF1Threshold(scores, labels, 2);
  EXPECT_LT(r.f1, 1.0);
  EXPECT_GT(r.f1, 0.5);
}

TEST(ThresholdSweepTest, UnreachedPositivesCountAgainstRecall) {
  std::vector<double> scores = {0.9};
  std::vector<bool> labels = {true};
  // 3 total positives; only 1 is a candidate.
  SweepResult r = BestF1Threshold(scores, labels, 3);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_NEAR(r.recall, 1.0 / 3.0, 1e-12);
}

TEST(ThresholdSweepTest, AllNegativesGiveZeroF1) {
  std::vector<double> scores = {0.5, 0.4};
  std::vector<bool> labels = {false, false};
  SweepResult r = BestF1Threshold(scores, labels, 0);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
}

TEST(ThresholdSweepTest, EmptyScores) {
  SweepResult r = BestF1Threshold({}, {}, 5);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
}

TEST(ThresholdSweepTest, EvaluateAtThresholdMatchesSweepPoint) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<bool> labels = {true, true, false, false};
  SweepResult best = BestF1Threshold(scores, labels, 2);
  SweepResult at = EvaluateAtThreshold(scores, labels, 2, best.threshold);
  EXPECT_DOUBLE_EQ(at.f1, best.f1);
  EXPECT_DOUBLE_EQ(at.precision, best.precision);
  EXPECT_DOUBLE_EQ(at.recall, best.recall);
}

TEST(ThresholdSweepTest, SweepNeverBeatenByRandomThresholds) {
  Rng rng(3);
  std::vector<double> scores(500);
  std::vector<bool> labels(500);
  size_t positives = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    labels[i] = rng.Bernoulli(0.1);
    positives += labels[i];
    // Noisy but informative scores.
    scores[i] = (labels[i] ? 0.6 : 0.3) + 0.4 * rng.UniformDouble();
  }
  SweepResult best = BestF1Threshold(scores, labels, positives);
  for (int t = 0; t < 200; ++t) {
    double threshold = rng.UniformDouble();
    SweepResult at = EvaluateAtThreshold(scores, labels, positives, threshold);
    EXPECT_LE(at.f1, best.f1 + 1e-9);
  }
}

TEST(ThresholdSweepTest, MoreLevelsNeverHurt) {
  Rng rng(4);
  std::vector<double> scores(200);
  std::vector<bool> labels(200);
  size_t positives = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    labels[i] = rng.Bernoulli(0.2);
    positives += labels[i];
    scores[i] = (labels[i] ? 0.5 : 0.2) + 0.5 * rng.UniformDouble();
  }
  SweepResult coarse = BestF1Threshold(scores, labels, positives, 10);
  SweepResult fine = BestF1Threshold(scores, labels, positives, 1000);
  EXPECT_GE(fine.f1 + 1e-12, coarse.f1);
}

TEST(ThresholdSweepTest, TiedScoresHandledConsistently) {
  std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  std::vector<bool> labels = {true, true, false, false};
  SweepResult r = BestF1Threshold(scores, labels, 2);
  // All-or-nothing at 0.5: best is everything predicted (P=0.5, R=1).
  EXPECT_NEAR(r.f1, 2 * 0.5 * 1.0 / 1.5, 1e-12);
}

}  // namespace
}  // namespace gter
