#include "gter/eval/confusion.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(ConfusionTest, MetricsFromCounts) {
  Confusion c;
  c.true_positives = 8;
  c.false_positives = 2;
  c.false_negatives = 4;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.8);
  EXPECT_NEAR(c.Recall(), 8.0 / 12.0, 1e-12);
  EXPECT_NEAR(c.F1(), 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0), 1e-12);
}

TEST(ConfusionTest, ZeroDenominators) {
  Confusion c;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.F1(), 0.0);
}

struct Fixture {
  Dataset ds{"test"};
  GroundTruth truth;
  PairSpace pairs;
  Fixture() : truth({0, 0, 1, 2}) {
    // Records 0,1 match; all four share a term so every pair is a candidate.
    ds.AddRecord(0, "t a");
    ds.AddRecord(0, "t a");
    ds.AddRecord(0, "t b");
    ds.AddRecord(0, "t c");
    pairs = PairSpace::Build(ds);
  }
};

TEST(ConfusionTest, LabelPairs) {
  Fixture f;
  auto labels = LabelPairs(f.pairs, f.truth);
  ASSERT_EQ(labels.size(), 6u);
  size_t positives = 0;
  for (bool l : labels) positives += l;
  EXPECT_EQ(positives, 1u);
  EXPECT_TRUE(labels[f.pairs.Find(0, 1)]);
}

TEST(ConfusionTest, TotalPositivesSingleSource) {
  Fixture f;
  EXPECT_EQ(TotalPositives(f.ds, f.truth), 1u);
}

TEST(ConfusionTest, TotalPositivesTwoSource) {
  Dataset ds("two", 2);
  ds.AddRecord(0, "a");
  ds.AddRecord(1, "a");
  ds.AddRecord(0, "b");
  GroundTruth truth({0, 0, 0});  // all same entity but only 1 cross pair
  // record 2 (src0) with record 1 (src1) is also cross → 2 cross pairs.
  EXPECT_EQ(TotalPositives(ds, truth), 2u);
}

TEST(ConfusionTest, EvaluatePredictions) {
  Fixture f;
  auto labels = LabelPairs(f.pairs, f.truth);
  std::vector<bool> predicted(f.pairs.size(), false);
  predicted[f.pairs.Find(0, 1)] = true;   // the true match
  predicted[f.pairs.Find(2, 3)] = true;   // a false positive
  Confusion c = EvaluatePairPredictions(f.pairs, predicted, labels, 1);
  EXPECT_EQ(c.true_positives, 1u);
  EXPECT_EQ(c.false_positives, 1u);
  EXPECT_EQ(c.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(c.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.Recall(), 1.0);
}

TEST(ConfusionTest, NonCandidateMatchesBecomeFalseNegatives) {
  // Matching pair that shares no term: not in PairSpace, still a positive.
  Dataset ds("test");
  ds.AddRecord(0, "x");
  ds.AddRecord(0, "y");
  GroundTruth truth({0, 0});
  PairSpace pairs = PairSpace::Build(ds);
  ASSERT_EQ(pairs.size(), 0u);
  Confusion c = EvaluatePairPredictions(pairs, {}, {},
                                        TotalPositives(ds, truth));
  EXPECT_EQ(c.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
}

}  // namespace
}  // namespace gter
