#include "gter/eval/spearman.h"

#include <gtest/gtest.h>

#include "gter/common/random.h"

namespace gter {
namespace {

TEST(AverageRanksTest, DistinctValues) {
  auto ranks = AverageRanks({10.0, 30.0, 20.0});
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 3.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(AverageRanksTest, TiesShareMeanRank) {
  auto ranks = AverageRanks({5.0, 5.0, 1.0});
  EXPECT_DOUBLE_EQ(ranks[2], 1.0);
  EXPECT_DOUBLE_EQ(ranks[0], 2.5);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
}

TEST(SpearmanTest, PerfectAgreement) {
  EXPECT_NEAR(SpearmanRho({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
}

TEST(SpearmanTest, PerfectDisagreement) {
  EXPECT_NEAR(SpearmanRho({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0, 1e-12);
}

TEST(SpearmanTest, MonotoneTransformInvariance) {
  std::vector<double> x = {0.1, 0.7, 0.3, 0.9, 0.5};
  std::vector<double> y;
  for (double v : x) y.push_back(v * v * v + 5.0);  // strictly increasing
  EXPECT_NEAR(SpearmanRho(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, IndependentVectorsNearZero) {
  Rng rng(5);
  std::vector<double> x(2000), y(2000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.UniformDouble();
    y[i] = rng.UniformDouble();
  }
  EXPECT_NEAR(SpearmanRho(x, y), 0.0, 0.08);
}

TEST(SpearmanTest, ConstantVectorGivesZero) {
  EXPECT_DOUBLE_EQ(SpearmanRho({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(SpearmanTest, TooShortGivesZero) {
  EXPECT_DOUBLE_EQ(SpearmanRho({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanRho({}, {}), 0.0);
}

TEST(SpearmanTest, SymmetricInArguments) {
  std::vector<double> x = {3, 1, 4, 1, 5};
  std::vector<double> y = {2, 7, 1, 8, 2};
  EXPECT_NEAR(SpearmanRho(x, y), SpearmanRho(y, x), 1e-12);
}

}  // namespace
}  // namespace gter
