// Eval-harness regression test: a checked-in fixture dataset (the CSV
// interchange format, embedded below) with known ground truth runs through
// the full fusion pipeline once, then every clustering endgame
// re-partitions the trained probabilities. Each endgame's pairwise F1 is
// pinned inside a tolerance band — the same numbers `gter_cli
// eval-endgames` reports — so a quality regression in any endgame (or in
// the pipeline feeding it) fails here, not in production.
//
// The bands are ±0.10 around values measured at the pinned config
// (rounds=2, η=0.98, merge_threshold=0.5); everything downstream of the
// generator is deterministic at any thread count, so drift means a real
// behavioural change.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "gter/core/clusterer.h"
#include "gter/core/fusion.h"
#include "gter/er/csv.h"
#include "gter/er/preprocess.h"
#include "gter/eval/cluster_metrics.h"

namespace gter {
namespace {

// Two-source fixture: 8 duplicated entities plus 4 singletons. The city
// tokens (pasadena, marina, ...) are shared across entities, so the
// candidate space has cross-entity edges for the endgames to reject.
// Entities 0 (3 records) and 5 (4 records) exceed one record per source:
// the transitive endgames can recover them fully, while the clean-clean
// matching family caps at one partner per record — its pinned F1 sits
// strictly below the closure family's, and the bands encode that gap.
constexpr const char* kFixtureCsv =
    "entity,source,field\n"
    "0,0,golden dragon szechuan pasadena 8185551234\n"
    "0,0,golden dragon szechuan pasadena chinese 8185551234\n"
    "0,1,golden dragon szechuan restaurant pasadena\n"
    "1,0,blue lagoon seafood grill marina 3105559876\n"
    "1,1,blue lagoon seafood marina 3105559876\n"
    "2,0,taco fiesta cantina pasadena 2135550000\n"
    "2,1,taco fiesta cantina pasadena grill\n"
    "3,0,maple leaf diner marina 7185554321\n"
    "3,1,maple leaf diner marina breakfast\n"
    "4,0,crimson tulip bakery pasadena 3475551111\n"
    "4,1,crimson tulip bakery cafe pasadena\n"
    "5,0,silver birch teahouse marina 5035552222\n"
    "5,0,silver birch teahouse tearoom marina 5035552222\n"
    "5,1,silver birch teahouse marina 5035552222\n"
    "5,1,silver birch teahouse marina oolong 5035552222\n"
    "6,0,emerald koi sushi pasadena 2065553333\n"
    "6,1,emerald koi sushi bar pasadena\n"
    "7,0,rustic barrel brewery marina 3035554444\n"
    "7,1,rustic barrel brewery taproom marina\n"
    "8,0,lone cypress bistro carmel 8315555555\n"
    "9,1,velvet antler steakhouse bozeman 4065556666\n"
    "10,0,paper lantern noodle bar fresno 5595557777\n"
    "11,1,ivory gull chowder house astoria 5035558888\n";

struct F1Band {
  ClustererKind kind;
  double min;
  double max;
};

TEST(EndgameRegressionTest, EveryEndgameF1StaysInItsPinnedBand) {
  const std::string path = ::testing::TempDir() + "endgame_fixture.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(kFixtureCsv, f);
    std::fclose(f);
  }
  auto loaded = LoadDatasetCsv(path, "endgame-fixture", /*num_sources=*/2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto [dataset, truth] = std::move(loaded).value();
  ASSERT_EQ(dataset.size(), 23u);
  ASSERT_EQ(truth.num_entities(), 12u);
  // At 23 records the default 12% document-frequency cut would delete any
  // token seen 3+ times — including the entity-defining names. 30% keeps
  // those and still drops the shared city tokens (the blocking noise).
  PreprocessOptions preprocess;
  preprocess.max_df_ratio = 0.30;
  RemoveFrequentTerms(&dataset, preprocess);

  FusionConfig config;
  config.rounds = 2;
  FusionPipeline pipeline(dataset, config);
  Result<FusionResult> run = pipeline.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const FusionResult& result = run.value();

  ClusterProblem problem;
  problem.num_records = dataset.size();
  problem.pairs = &pipeline.pairs();
  problem.pair_probability = &result.pair_probability;
  problem.eta = config.eta;
  std::vector<uint32_t> source_of;
  source_of.reserve(dataset.size());
  for (const Record& r : dataset.records()) source_of.push_back(r.source);
  problem.source_of = &source_of;

  // Measured F1 at the pinned config, ±0.10. The three families land on
  // three distinct values: the transitive closures recover most of the
  // multi-record entities (0.889), the one-partner matchers cap their
  // recall (0.696), and hierarchical sits between (0.750).
  const F1Band kBands[] = {
      {ClustererKind::kConnectedComponents, 0.79, 0.99},
      {ClustererKind::kCorrelation, 0.79, 0.99},
      {ClustererKind::kUniqueMapping, 0.60, 0.80},
      {ClustererKind::kRowAssignment, 0.60, 0.80},
      {ClustererKind::kColumnAssignment, 0.60, 0.80},
      {ClustererKind::kBestMatch, 0.60, 0.80},
      {ClustererKind::kReciprocalMatch, 0.60, 0.80},
      {ClustererKind::kExactMatch, 0.60, 0.80},
      {ClustererKind::kHierarchical, 0.65, 0.85},
  };
  for (const F1Band& band : kBands) {
    SCOPED_TRACE(ClustererKindName(band.kind));
    Result<Clustering> clustered =
        MakeClusterer(band.kind)->Cluster(problem);
    ASSERT_TRUE(clustered.ok()) << clustered.status().ToString();
    ClusterEvaluation eval =
        EvaluateClustering(clustered.value().cluster_of, truth);
    std::printf("[ band ] %-22s f1=%.4f prec=%.4f rec=%.4f clusters=%zu\n",
                ClustererKindName(band.kind), eval.pairwise_f1,
                eval.pairwise_precision, eval.pairwise_recall,
                eval.num_predicted_clusters);
    EXPECT_GE(eval.pairwise_f1, band.min);
    EXPECT_LE(eval.pairwise_f1, band.max);
  }
}

}  // namespace
}  // namespace gter
