#include "gter/common/status.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, OkStatusIsCoercedToInternalError) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Status FailingOperation() { return Status::IOError("disk"); }

Status Propagating() {
  GTER_RETURN_IF_ERROR(FailingOperation());
  return Status::OK();
}

TEST(MacroTest, ReturnIfErrorPropagates) {
  Status s = Propagating();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(MacroTest, CheckPassesOnTrue) {
  GTER_CHECK(1 + 1 == 2);  // must not abort
  GTER_CHECK_OK(Status::OK());
}

TEST(MacroDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH(GTER_CHECK(false), "GTER_CHECK failed");
}

TEST(MacroDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(GTER_CHECK_OK(Status::Internal("boom")), "boom");
}

}  // namespace
}  // namespace gter
