// MetricsRegistry unit tests plus the end-to-end observability contract:
// a pipeline run with a registry installed emits JSON containing the
// per-stage timers and counters the CLI's --metrics_out promises. The JSON
// is checked with a minimal in-test parser, so malformed output (bad
// escaping, trailing commas, non-numeric values) fails here and not in a
// downstream dashboard.

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gter/common/metrics.h"
#include "gter/core/fusion.h"
#include "gter/datagen/datagen.h"
#include "gter/er/preprocess.h"
#include "json_test_parser.h"

namespace gter {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

// --- Registry unit tests ----------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndPointReads) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Counter("a/b"), 0u);
  registry.AddCounter("a/b");
  registry.AddCounter("a/b", 41);
  EXPECT_EQ(registry.Counter("a/b"), 42u);

  registry.DeclareCounter("a/declared");
  EXPECT_EQ(registry.Counter("a/declared"), 0u);
  registry.AddCounter("a/declared", 5);
  registry.DeclareCounter("a/declared");  // must not reset
  EXPECT_EQ(registry.Counter("a/declared"), 5u);

  registry.SetGauge("g/x", 3.5);
  registry.SetGauge("g/x", 7.25);  // last write wins
  EXPECT_EQ(registry.Gauge("g/x"), 7.25);
}

TEST(MetricsRegistry, TimerAggregates) {
  MetricsRegistry registry;
  registry.RecordTime("stage/a", 0.5);
  registry.RecordTime("stage/a", 0.25);
  TimerStat t = registry.Timer("stage/a");
  EXPECT_EQ(t.count, 2u);
  EXPECT_DOUBLE_EQ(t.seconds, 0.75);
  EXPECT_EQ(registry.Timer("stage/untouched").count, 0u);
}

TEST(MetricsRegistry, HistogramBucketsAndMerge) {
  Histogram h;
  h.Observe(1.0);  // exactly 1 → bucket kBucketOfOne
  h.Observe(3.0);  // [2,4) → kBucketOfOne + 1
  h.Observe(0.0);  // non-positive → bucket 0
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 4.0);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
  EXPECT_EQ(h.buckets[Histogram::kBucketOfOne], 1u);
  EXPECT_EQ(h.buckets[Histogram::kBucketOfOne + 1], 1u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(Histogram::kBucketOfOne),
                   2.0);

  Histogram other;
  other.Observe(1024.0);
  h.Merge(other);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.max, 1024.0);

  MetricsRegistry registry;
  registry.MergeHistogram("dist/x", h);
  registry.Observe("dist/x", 2.0);
  EXPECT_EQ(registry.HistogramOf("dist/x").count, 5u);
}

TEST(HistogramQuantile, EmptyEdgeAndSingleValue) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  Histogram single;
  single.Observe(3.75);
  // Clamping to the exact [min, max] envelope makes single-valued
  // histograms exact at every quantile.
  for (double q : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(single.Quantile(q), 3.75) << q;
  }

  Histogram two;
  two.Observe(1.0);
  two.Observe(1024.0);
  EXPECT_DOUBLE_EQ(two.Quantile(0.0), 1.0);    // q<=0 → min
  EXPECT_DOUBLE_EQ(two.Quantile(1.0), 1024.0); // q>=1 → max
}

TEST(HistogramQuantile, ExactForUniformValuesInOneBucket) {
  // 256 values uniformly spaced on [256, 511] land in one base-2 bucket.
  // The interpolation span is the bucket clamped to the recorded
  // [min, max] envelope, so the q-quantile of values uniform on
  // [min, max] is exactly min + q·(max − min).
  Histogram h;
  for (int i = 0; i < 256; ++i) h.Observe(256.0 + i);
  EXPECT_DOUBLE_EQ(h.Quantile(0.50), 256.0 + 0.50 * 255.0);  // 383.5
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 256.0 + 0.25 * 255.0);  // 319.75
  EXPECT_DOUBLE_EQ(h.Quantile(0.95), 256.0 + 0.95 * 255.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 256.0 + 0.99 * 255.0);
}

TEST(HistogramQuantile, ClampsInterpolationSpanToEnvelope) {
  // Regression: values concentrated in the top sliver of a wide bucket.
  // 12 values on [500, 511] occupy bucket [256, 512); interpolating over
  // the raw bucket span used to put every low/mid quantile below min and
  // flat-clamp it there (q(0.25) == q(0.5) == 500). Clamping the span to
  // [min, max] keeps the estimate exact for the uniform spread.
  Histogram h;
  for (int i = 0; i < 12; ++i) h.Observe(500.0 + i);
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 500.0 + 0.25 * 11.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.50), 500.0 + 0.50 * 11.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 500.0 + 0.75 * 11.0);
  EXPECT_LT(h.Quantile(0.25), h.Quantile(0.50));  // no flat-clamping
  EXPECT_LT(h.Quantile(0.50), h.Quantile(0.75));
}

TEST(HistogramQuantile, WalksAcrossBuckets) {
  // Three observations at 1.0 (bucket [1,2)) and one at 1024: the median
  // interpolates 2/3 into [1,2), the p99 clamps to max.
  Histogram h;
  h.Observe(1.0);
  h.Observe(1.0);
  h.Observe(1.0);
  h.Observe(1024.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.0 + (2.0 / 3.0));
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 1024.0);
  // Monotone in q.
  double prev = h.Quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    double cur = h.Quantile(q);
    EXPECT_GE(cur, prev) << q;
    prev = cur;
  }
}

TEST(HistogramQuantile, ToJsonEmitsPercentiles) {
  MetricsRegistry registry;
  for (int i = 0; i < 256; ++i) registry.Observe("h/d", 256.0 + i);
  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.ToJson()).Parse(&root));
  const JsonValue& hist = root.At("histograms").At("h/d");
  EXPECT_DOUBLE_EQ(hist.At("p50").number, 383.5);
  EXPECT_DOUBLE_EQ(hist.At("p95").number, 256.0 + 0.95 * 255.0);
  EXPECT_DOUBLE_EQ(hist.At("p99").number, 256.0 + 0.99 * 255.0);

  // Empty histograms stay schema-stable: no percentile keys, count 0.
  MetricsRegistry empty;
  empty.MergeHistogram("h/empty", Histogram{});
  JsonValue empty_root;
  ASSERT_TRUE(JsonParser(empty.ToJson()).Parse(&empty_root));
  EXPECT_FALSE(empty_root.At("histograms").At("h/empty").Has("p50"));
}

TEST(MetricsRegistry, ScopedInstallNestsAndRestores) {
  EXPECT_EQ(MetricsRegistry::Current(), nullptr);
  MetricsRegistry outer, inner;
  {
    ScopedMetricsInstall install_outer(&outer);
    EXPECT_EQ(MetricsRegistry::Current(), &outer);
    {
      ScopedMetricsInstall install_inner(&inner);
      EXPECT_EQ(MetricsRegistry::Current(), &inner);
    }
    EXPECT_EQ(MetricsRegistry::Current(), &outer);
    EXPECT_EQ(ResolveMetrics(nullptr), &outer);
    EXPECT_EQ(ResolveMetrics(&inner), &inner);
  }
  EXPECT_EQ(MetricsRegistry::Current(), nullptr);
  EXPECT_EQ(ResolveMetrics(nullptr), nullptr);
}

TEST(MetricsRegistry, InstallIsPerThread) {
  MetricsRegistry registry;
  ScopedMetricsInstall install(&registry);
  MetricsRegistry* seen = &registry;
  std::thread other([&] { seen = MetricsRegistry::Current(); });
  other.join();
  EXPECT_EQ(seen, nullptr);  // workers do not inherit the installation
}

TEST(MetricsRegistry, ScopedTimerRecordsOnlyWithRegistry) {
  { ScopedTimer noop(nullptr, "x/y"); }  // must not crash or allocate
  MetricsRegistry registry;
  { GTER_TRACE_SCOPE_TO(&registry, "x/y"); }
  EXPECT_EQ(registry.Timer("x/y").count, 1u);
  EXPECT_GE(registry.Timer("x/y").seconds, 0.0);
  {
    ScopedMetricsInstall install(&registry);
    GTER_TRACE_SCOPE("x/y");
  }
  EXPECT_EQ(registry.Timer("x/y").count, 2u);
}

TEST(MetricsRegistry, ConcurrentMutationIsLinearizable) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.AddCounter("shared/counter");
        registry.Observe("shared/hist", static_cast<double>(i + 1));
        registry.RecordTime("shared/timer", 1e-9);
        registry.SetGauge("shared/gauge", static_cast<double>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.Counter("shared/counter"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.HistogramOf("shared/hist").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.Timer("shared/timer").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, ToJsonIsValidAndDeterministic) {
  MetricsRegistry registry;
  registry.AddCounter("z/last", 3);
  registry.AddCounter("a/first", 1);
  registry.SetGauge("g/bytes", 1.5e6);
  registry.RecordTime("t/stage", 0.125);
  registry.Observe("h/dist", 2.0);
  std::string json = registry.ToJson();
  EXPECT_EQ(json, registry.ToJson());  // deterministic

  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  ASSERT_EQ(root.kind, JsonValue::kObject);
  for (const char* section : {"counters", "gauges", "timers", "histograms"}) {
    ASSERT_TRUE(root.Has(section)) << section;
  }
  EXPECT_EQ(root.At("counters").At("a/first").number, 1.0);
  EXPECT_EQ(root.At("counters").At("z/last").number, 3.0);
  EXPECT_EQ(root.At("gauges").At("g/bytes").number, 1.5e6);
  EXPECT_EQ(root.At("timers").At("t/stage").At("count").number, 1.0);
  EXPECT_EQ(root.At("timers").At("t/stage").At("seconds").number, 0.125);
  const JsonValue& hist = root.At("histograms").At("h/dist");
  EXPECT_EQ(hist.At("count").number, 1.0);
  EXPECT_EQ(hist.At("sum").number, 2.0);
  ASSERT_EQ(hist.At("buckets").kind, JsonValue::kArray);
  ASSERT_EQ(hist.At("buckets").array.size(), 1u);  // sparse emission
  EXPECT_EQ(hist.At("buckets").array[0].At("count").number, 1.0);
}

TEST(MetricsRegistry, JsonEscapesStrings) {
  MetricsRegistry registry;
  registry.AddCounter("weird\"name\\with\nescapes");
  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.ToJson()).Parse(&root));
  EXPECT_TRUE(root.At("counters").Has("weird\"name\\with\nescapes"));
}

// --- SlidingHistogram ---------------------------------------------------

// Timestamps are injected (RecordAt/SnapshotAt) so rotation is driven
// deterministically: with an 8-second window each slot spans 1 second.
constexpr uint64_t kSec = 1'000'000'000ull;

TEST(SlidingHistogram, RecordsAndSnapshotsWithinWindow) {
  SlidingHistogram sliding(8.0);
  sliding.RecordAt(1.0, 1 * kSec);
  sliding.RecordAt(3.0, 2 * kSec);
  sliding.RecordAt(9.0, 3 * kSec);
  Histogram snap = sliding.SnapshotAt(3 * kSec);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 13.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 9.0);
}

TEST(SlidingHistogram, OldSlotsExpireFromTheWindow) {
  SlidingHistogram sliding(8.0);
  sliding.RecordAt(100.0, 1 * kSec);  // epoch 1
  sliding.RecordAt(5.0, 4 * kSec);    // epoch 4
  // At t=8 both are inside the 8-slot window [epoch 1, epoch 8].
  EXPECT_EQ(sliding.SnapshotAt(8 * kSec).count, 2u);
  // At t=9 the window is [epoch 2, epoch 9]: the first observation ages
  // out even though its slot has not been recycled yet.
  Histogram later = sliding.SnapshotAt(9 * kSec);
  EXPECT_EQ(later.count, 1u);
  EXPECT_DOUBLE_EQ(later.max, 5.0);
  // Far in the future the window is empty.
  EXPECT_EQ(sliding.SnapshotAt(100 * kSec).count, 0u);
}

TEST(SlidingHistogram, RotationRecyclesLapsedSlots) {
  SlidingHistogram sliding(8.0);
  sliding.RecordAt(7.0, 1 * kSec);  // epoch 1 → slot 1
  // Epoch 9 maps to the same slot; recording there must first recycle it,
  // dropping the epoch-1 tenancy.
  sliding.RecordAt(2.0, 9 * kSec);
  Histogram snap = sliding.SnapshotAt(9 * kSec);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.min, 2.0);
  EXPECT_DOUBLE_EQ(snap.max, 2.0);
}

TEST(SlidingHistogram, SnapshotCountMatchesBucketTotal) {
  // The Prometheus writer relies on count == Σ buckets for the
  // `+Inf == _count` invariant; the snapshot derives count from the
  // bucket array, so they can never disagree.
  SlidingHistogram sliding(8.0);
  for (int i = 0; i < 100; ++i) {
    sliding.RecordAt(static_cast<double>(i + 1), 2 * kSec);
  }
  Histogram snap = sliding.SnapshotAt(2 * kSec);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(snap.count, bucket_total);
  EXPECT_EQ(snap.count, 100u);
}

TEST(SlidingHistogram, ConcurrentRecordersLoseNothingWithoutRotation) {
  // All records land in one epoch, so no rotation races: every
  // observation must be present in the snapshot.
  SlidingHistogram sliding(8.0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sliding] {
      for (int i = 0; i < kPerThread; ++i) {
        sliding.RecordAt(static_cast<double>(i % 64 + 1), 3 * kSec);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(sliding.SnapshotAt(3 * kSec).count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(SlidingHistogram, ConcurrentRecordAndSnapshotAcrossRotation) {
  // Hammer record + snapshot across rotating epochs under TSan: the
  // assertions only check internal consistency (count == Σ buckets,
  // finite envelope) because rotation is allowed to drop edge
  // observations.
  SlidingHistogram sliding(0.000008);  // 1µs slots: rotation every record
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      Histogram snap = sliding.Snapshot();
      uint64_t total = 0;
      for (uint64_t b : snap.buckets) total += b;
      EXPECT_EQ(snap.count, total);
      if (snap.count > 0) {
        EXPECT_LE(snap.min, snap.max);
      }
    }
  });
  std::vector<std::thread> recorders;
  for (int t = 0; t < 4; ++t) {
    recorders.emplace_back([&sliding] {
      for (int i = 0; i < 20000; ++i) {
        sliding.Record(static_cast<double>(i % 1000 + 1));
      }
    });
  }
  for (std::thread& t : recorders) t.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();
}

TEST(MetricsRegistry, SlidingSectionInJsonAndSnapshots) {
  MetricsRegistry registry;
  // Without sliding histograms the section is absent (schema stability
  // for run_report consumers predating it).
  {
    JsonValue root;
    ASSERT_TRUE(JsonParser(registry.ToJson()).Parse(&root));
    EXPECT_FALSE(root.Has("sliding"));
  }
  SlidingHistogram* sliding = registry.Sliding("server/x/work_us", 60.0);
  ASSERT_NE(sliding, nullptr);
  EXPECT_EQ(registry.Sliding("server/x/work_us"), sliding);  // stable ptr
  sliding->Record(250.0);
  EXPECT_EQ(registry.SlidingSnapshot("server/x/work_us").count, 1u);
  EXPECT_EQ(registry.SlidingSnapshot("server/absent").count, 0u);
  ASSERT_EQ(registry.SlidingSnapshots().size(), 1u);

  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.ToJson()).Parse(&root));
  ASSERT_TRUE(root.Has("sliding"));
  EXPECT_EQ(root.At("sliding").At("server/x/work_us").At("count").number,
            1.0);
}

// --- End-to-end: the pipeline emits the promised schema ----------------

TEST(PipelineMetrics, ResolveRunEmitsRequiredKeys) {
  MetricsRegistry registry;
  DeclarePipelineMetrics(&registry);
  ScopedMetricsInstall install(&registry);

  GeneratedDataset data =
      GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 7);
  RemoveFrequentTerms(&data.dataset);
  FusionConfig config;
  config.rounds = 2;
  FusionPipeline pipeline(data.dataset, config);
  FusionResult result = pipeline.Run().value();
  EXPECT_EQ(result.round_stats.size(), 2u);

  std::string json = registry.ToJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;

  // Stage timers observed on a CliqueRank-mode run.
  for (const char* timer :
       {"fusion/total", "fusion/round", "iter/total", "iter/sweep",
        "cliquerank/total", "pairspace/build", "bipartite/build"}) {
    ASSERT_TRUE(root.At("timers").Has(timer)) << timer << "\n" << json;
    EXPECT_GT(root.At("timers").At(timer).At("count").number, 0.0) << timer;
  }
  // Counters: live ones count, RSS's stay declared at zero (stable schema).
  for (const char* counter :
       {"dataset/records", "dataset/tokens", "pairspace/pairs", "iter/runs",
        "iter/sweeps", "cliquerank/runs", "fusion/rounds", "fusion/matches",
        "rss/walks_run", "rss/early_stops", "rss/target_hits"}) {
    ASSERT_TRUE(root.At("counters").Has(counter)) << counter;
  }
  EXPECT_GT(root.At("counters").At("dataset/records").number, 0.0);
  EXPECT_GT(root.At("counters").At("pairspace/pairs").number, 0.0);
  EXPECT_EQ(root.At("counters").At("fusion/rounds").number, 2.0);
  EXPECT_EQ(root.At("counters").At("rss/walks_run").number, 0.0);
  EXPECT_EQ(root.At("counters").At("cliquerank/runs").number, 2.0);
  // Exactly one engine per run.
  EXPECT_EQ(root.At("counters").At("cliquerank/engine_dense").number +
                root.At("counters").At("cliquerank/engine_masked").number,
            2.0);
  EXPECT_GT(root.At("gauges").At("cliquerank/scratch_bytes").number, 0.0);
  EXPECT_GT(root.At("counters").At("iter/sweeps").number, 0.0);
  ASSERT_TRUE(root.At("histograms").Has("iter/convergence_delta"));
  EXPECT_GT(root.At("histograms")
                .At("iter/convergence_delta")
                .At("count")
                .number,
            0.0);
}

TEST(PipelineMetrics, RssRunRecordsWalkCounters) {
  MetricsRegistry registry;
  ScopedMetricsInstall install(&registry);

  GeneratedDataset data =
      GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 11);
  RemoveFrequentTerms(&data.dataset);
  FusionConfig config;
  config.rounds = 1;
  config.use_rss = true;
  config.rss.num_walks = 10;
  config.rss.max_steps = 5;
  FusionPipeline pipeline(data.dataset, config);
  pipeline.Run().value();

  EXPECT_GT(registry.Counter("rss/walks_run"), 0u);
  EXPECT_GT(registry.Timer("rss/total").count, 0u);
  Histogram steps = registry.HistogramOf("rss/steps_per_walk");
  EXPECT_EQ(steps.count, registry.Counter("rss/walks_run"));
  EXPECT_GT(steps.max, 0.0);
  EXPECT_LE(steps.max, static_cast<double>(config.rss.max_steps));
}

TEST(PipelineMetrics, WriteMetricsJsonRoundTrips) {
  MetricsRegistry registry;
  registry.AddCounter("x/y", 9);
  std::string path = ::testing::TempDir() + "/metrics_test_out.json";
  ASSERT_TRUE(WriteMetricsJson(path, registry).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(f);
  std::remove(path.c_str());

  JsonValue root;
  ASSERT_TRUE(JsonParser(contents).Parse(&root));
  EXPECT_EQ(root.At("counters").At("x/y").number, 9.0);

  EXPECT_FALSE(WriteMetricsJson("/nonexistent-dir/x.json", registry).ok());
}

}  // namespace
}  // namespace gter
