// MetricsRegistry unit tests plus the end-to-end observability contract:
// a pipeline run with a registry installed emits JSON containing the
// per-stage timers and counters the CLI's --metrics_out promises. The JSON
// is checked with a minimal in-test parser, so malformed output (bad
// escaping, trailing commas, non-numeric values) fails here and not in a
// downstream dashboard.

#include <atomic>
#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gter/common/metrics.h"
#include "gter/core/fusion.h"
#include "gter/datagen/datagen.h"
#include "gter/er/preprocess.h"

namespace gter {
namespace {

// --- A minimal JSON parser (objects, arrays, strings, numbers) ---------

struct JsonValue {
  enum Kind { kObject, kArray, kString, kNumber } kind = kNumber;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0.0;

  bool Has(const std::string& key) const {
    return kind == kObject && object.count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_TRUE(it != object.end()) << "missing key: " << key;
    static const JsonValue kEmpty;
    return it == object.end() ? kEmpty : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code =
                std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16);
            pos_ += 4;
            if (code > 0x7F) return false;  // emitter is ASCII-only
            out->push_back(static_cast<char>(code));
            break;
          }
          default: return false;  // the emitter only produces these
        }
      } else {
        out->push_back(c);
      }
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue child;
        if (!ParseValue(&child)) return false;
        out->object.emplace(std::move(key), std::move(child));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      while (true) {
        JsonValue child;
        if (!ParseValue(&child)) return false;
        out->array.push_back(std::move(child));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->string);
    }
    out->kind = JsonValue::kNumber;
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- Registry unit tests ----------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndPointReads) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Counter("a/b"), 0u);
  registry.AddCounter("a/b");
  registry.AddCounter("a/b", 41);
  EXPECT_EQ(registry.Counter("a/b"), 42u);

  registry.DeclareCounter("a/declared");
  EXPECT_EQ(registry.Counter("a/declared"), 0u);
  registry.AddCounter("a/declared", 5);
  registry.DeclareCounter("a/declared");  // must not reset
  EXPECT_EQ(registry.Counter("a/declared"), 5u);

  registry.SetGauge("g/x", 3.5);
  registry.SetGauge("g/x", 7.25);  // last write wins
  EXPECT_EQ(registry.Gauge("g/x"), 7.25);
}

TEST(MetricsRegistry, TimerAggregates) {
  MetricsRegistry registry;
  registry.RecordTime("stage/a", 0.5);
  registry.RecordTime("stage/a", 0.25);
  TimerStat t = registry.Timer("stage/a");
  EXPECT_EQ(t.count, 2u);
  EXPECT_DOUBLE_EQ(t.seconds, 0.75);
  EXPECT_EQ(registry.Timer("stage/untouched").count, 0u);
}

TEST(MetricsRegistry, HistogramBucketsAndMerge) {
  Histogram h;
  h.Observe(1.0);  // exactly 1 → bucket kBucketOfOne
  h.Observe(3.0);  // [2,4) → kBucketOfOne + 1
  h.Observe(0.0);  // non-positive → bucket 0
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 4.0);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
  EXPECT_EQ(h.buckets[Histogram::kBucketOfOne], 1u);
  EXPECT_EQ(h.buckets[Histogram::kBucketOfOne + 1], 1u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(Histogram::kBucketOfOne),
                   2.0);

  Histogram other;
  other.Observe(1024.0);
  h.Merge(other);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.max, 1024.0);

  MetricsRegistry registry;
  registry.MergeHistogram("dist/x", h);
  registry.Observe("dist/x", 2.0);
  EXPECT_EQ(registry.HistogramOf("dist/x").count, 5u);
}

TEST(MetricsRegistry, ScopedInstallNestsAndRestores) {
  EXPECT_EQ(MetricsRegistry::Current(), nullptr);
  MetricsRegistry outer, inner;
  {
    ScopedMetricsInstall install_outer(&outer);
    EXPECT_EQ(MetricsRegistry::Current(), &outer);
    {
      ScopedMetricsInstall install_inner(&inner);
      EXPECT_EQ(MetricsRegistry::Current(), &inner);
    }
    EXPECT_EQ(MetricsRegistry::Current(), &outer);
    EXPECT_EQ(ResolveMetrics(nullptr), &outer);
    EXPECT_EQ(ResolveMetrics(&inner), &inner);
  }
  EXPECT_EQ(MetricsRegistry::Current(), nullptr);
  EXPECT_EQ(ResolveMetrics(nullptr), nullptr);
}

TEST(MetricsRegistry, InstallIsPerThread) {
  MetricsRegistry registry;
  ScopedMetricsInstall install(&registry);
  MetricsRegistry* seen = &registry;
  std::thread other([&] { seen = MetricsRegistry::Current(); });
  other.join();
  EXPECT_EQ(seen, nullptr);  // workers do not inherit the installation
}

TEST(MetricsRegistry, ScopedTimerRecordsOnlyWithRegistry) {
  { ScopedTimer noop(nullptr, "x/y"); }  // must not crash or allocate
  MetricsRegistry registry;
  { GTER_TRACE_SCOPE_TO(&registry, "x/y"); }
  EXPECT_EQ(registry.Timer("x/y").count, 1u);
  EXPECT_GE(registry.Timer("x/y").seconds, 0.0);
  {
    ScopedMetricsInstall install(&registry);
    GTER_TRACE_SCOPE("x/y");
  }
  EXPECT_EQ(registry.Timer("x/y").count, 2u);
}

TEST(MetricsRegistry, ConcurrentMutationIsLinearizable) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.AddCounter("shared/counter");
        registry.Observe("shared/hist", static_cast<double>(i + 1));
        registry.RecordTime("shared/timer", 1e-9);
        registry.SetGauge("shared/gauge", static_cast<double>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.Counter("shared/counter"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.HistogramOf("shared/hist").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.Timer("shared/timer").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, ToJsonIsValidAndDeterministic) {
  MetricsRegistry registry;
  registry.AddCounter("z/last", 3);
  registry.AddCounter("a/first", 1);
  registry.SetGauge("g/bytes", 1.5e6);
  registry.RecordTime("t/stage", 0.125);
  registry.Observe("h/dist", 2.0);
  std::string json = registry.ToJson();
  EXPECT_EQ(json, registry.ToJson());  // deterministic

  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  ASSERT_EQ(root.kind, JsonValue::kObject);
  for (const char* section : {"counters", "gauges", "timers", "histograms"}) {
    ASSERT_TRUE(root.Has(section)) << section;
  }
  EXPECT_EQ(root.At("counters").At("a/first").number, 1.0);
  EXPECT_EQ(root.At("counters").At("z/last").number, 3.0);
  EXPECT_EQ(root.At("gauges").At("g/bytes").number, 1.5e6);
  EXPECT_EQ(root.At("timers").At("t/stage").At("count").number, 1.0);
  EXPECT_EQ(root.At("timers").At("t/stage").At("seconds").number, 0.125);
  const JsonValue& hist = root.At("histograms").At("h/dist");
  EXPECT_EQ(hist.At("count").number, 1.0);
  EXPECT_EQ(hist.At("sum").number, 2.0);
  ASSERT_EQ(hist.At("buckets").kind, JsonValue::kArray);
  ASSERT_EQ(hist.At("buckets").array.size(), 1u);  // sparse emission
  EXPECT_EQ(hist.At("buckets").array[0].At("count").number, 1.0);
}

TEST(MetricsRegistry, JsonEscapesStrings) {
  MetricsRegistry registry;
  registry.AddCounter("weird\"name\\with\nescapes");
  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.ToJson()).Parse(&root));
  EXPECT_TRUE(root.At("counters").Has("weird\"name\\with\nescapes"));
}

// --- End-to-end: the pipeline emits the promised schema ----------------

TEST(PipelineMetrics, ResolveRunEmitsRequiredKeys) {
  MetricsRegistry registry;
  DeclarePipelineMetrics(&registry);
  ScopedMetricsInstall install(&registry);

  GeneratedDataset data =
      GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 7);
  RemoveFrequentTerms(&data.dataset);
  FusionConfig config;
  config.rounds = 2;
  FusionPipeline pipeline(data.dataset, config);
  FusionResult result = pipeline.Run();
  EXPECT_EQ(result.round_stats.size(), 2u);

  std::string json = registry.ToJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;

  // Stage timers observed on a CliqueRank-mode run.
  for (const char* timer :
       {"fusion/total", "fusion/round", "iter/total", "iter/sweep",
        "cliquerank/total", "pairspace/build", "bipartite/build"}) {
    ASSERT_TRUE(root.At("timers").Has(timer)) << timer << "\n" << json;
    EXPECT_GT(root.At("timers").At(timer).At("count").number, 0.0) << timer;
  }
  // Counters: live ones count, RSS's stay declared at zero (stable schema).
  for (const char* counter :
       {"dataset/records", "dataset/tokens", "pairspace/pairs", "iter/runs",
        "iter/sweeps", "cliquerank/runs", "fusion/rounds", "fusion/matches",
        "rss/walks_run", "rss/early_stops", "rss/target_hits"}) {
    ASSERT_TRUE(root.At("counters").Has(counter)) << counter;
  }
  EXPECT_GT(root.At("counters").At("dataset/records").number, 0.0);
  EXPECT_GT(root.At("counters").At("pairspace/pairs").number, 0.0);
  EXPECT_EQ(root.At("counters").At("fusion/rounds").number, 2.0);
  EXPECT_EQ(root.At("counters").At("rss/walks_run").number, 0.0);
  EXPECT_EQ(root.At("counters").At("cliquerank/runs").number, 2.0);
  // Exactly one engine per run.
  EXPECT_EQ(root.At("counters").At("cliquerank/engine_dense").number +
                root.At("counters").At("cliquerank/engine_masked").number,
            2.0);
  EXPECT_GT(root.At("gauges").At("cliquerank/scratch_bytes").number, 0.0);
  EXPECT_GT(root.At("counters").At("iter/sweeps").number, 0.0);
  ASSERT_TRUE(root.At("histograms").Has("iter/convergence_delta"));
  EXPECT_GT(root.At("histograms")
                .At("iter/convergence_delta")
                .At("count")
                .number,
            0.0);
}

TEST(PipelineMetrics, RssRunRecordsWalkCounters) {
  MetricsRegistry registry;
  ScopedMetricsInstall install(&registry);

  GeneratedDataset data =
      GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 11);
  RemoveFrequentTerms(&data.dataset);
  FusionConfig config;
  config.rounds = 1;
  config.use_rss = true;
  config.rss.num_walks = 10;
  config.rss.max_steps = 5;
  FusionPipeline pipeline(data.dataset, config);
  pipeline.Run();

  EXPECT_GT(registry.Counter("rss/walks_run"), 0u);
  EXPECT_GT(registry.Timer("rss/total").count, 0u);
  Histogram steps = registry.HistogramOf("rss/steps_per_walk");
  EXPECT_EQ(steps.count, registry.Counter("rss/walks_run"));
  EXPECT_GT(steps.max, 0.0);
  EXPECT_LE(steps.max, static_cast<double>(config.rss.max_steps));
}

TEST(PipelineMetrics, WriteMetricsJsonRoundTrips) {
  MetricsRegistry registry;
  registry.AddCounter("x/y", 9);
  std::string path = ::testing::TempDir() + "/metrics_test_out.json";
  ASSERT_TRUE(WriteMetricsJson(path, registry).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(f);
  std::remove(path.c_str());

  JsonValue root;
  ASSERT_TRUE(JsonParser(contents).Parse(&root));
  EXPECT_EQ(root.At("counters").At("x/y").number, 9.0);

  EXPECT_FALSE(WriteMetricsJson("/nonexistent-dir/x.json", registry).ok());
}

}  // namespace
}  // namespace gter
