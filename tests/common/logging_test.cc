#include "gter/common/logging.h"

#include <regex>
#include <string>

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, StreamingBelowLevelDoesNotCrash) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  GTER_LOG(Info) << "suppressed " << 42 << " message";
  GTER_LOG(Debug) << "also suppressed";
  SetLogLevel(original);
}

TEST(LoggingTest, StreamingAtLevelDoesNotCrash) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  GTER_LOG(Warning) << "visible warning " << 3.14;
  SetLogLevel(original);
}

TEST(LoggingTest, PrefixHasTimestampLevelThreadAndLocation) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  GTER_LOG(Warning) << "formatted message " << 7;
  std::string output = ::testing::internal::GetCapturedStderr();
  SetLogLevel(original);

  // [2026-08-05T12:34:56.789Z WARN <tid> logging_test.cc:NN] msg
  std::regex pattern(
      R"(^\[\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z WARN \d+ )"
      R"(logging_test\.cc:\d+\] formatted message 7\n$)");
  EXPECT_TRUE(std::regex_match(output, pattern)) << output;
}

TEST(LoggingTest, ParseLogLevelAcceptsAllSpellings) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);

  level = LogLevel::kDebug;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_EQ(level, LogLevel::kDebug);  // untouched on failure
}

}  // namespace
}  // namespace gter
