#include "gter/common/logging.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, StreamingBelowLevelDoesNotCrash) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  GTER_LOG(Info) << "suppressed " << 42 << " message";
  GTER_LOG(Debug) << "also suppressed";
  SetLogLevel(original);
}

TEST(LoggingTest, StreamingAtLevelDoesNotCrash) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  GTER_LOG(Warning) << "visible warning " << 3.14;
  SetLogLevel(original);
}

}  // namespace
}  // namespace gter
