#include "gter/common/parse_number.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "gter/common/random.h"

namespace gter {
namespace {

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt64("0").value(), 0);
  EXPECT_EQ(ParseInt64("-42").value(), -42);
  EXPECT_EQ(ParseInt64("9223372036854775807").value(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(ParseInt64("-9223372036854775808").value(),
            std::numeric_limits<int64_t>::min());
}

TEST(ParseInt64Test, OverflowIsAnErrorNotAClamp) {
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());
  EXPECT_FALSE(ParseInt64("-9223372036854775809").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseInt64Test, RejectsJunk) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("1 2").ok());
  EXPECT_FALSE(ParseInt64("-").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(ParseUint64Test, RejectsNegativeInsteadOfWrapping) {
  // strtoull alone would "parse" -1 as 18446744073709551615.
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseUint64("-0").ok());
  EXPECT_EQ(ParseUint64("18446744073709551615").value(),
            std::numeric_limits<uint64_t>::max());
  EXPECT_FALSE(ParseUint64("18446744073709551616").ok());
}

TEST(ParseUint32Test, EnforcesTheNarrowRange) {
  EXPECT_EQ(ParseUint32("4294967295").value(),
            std::numeric_limits<uint32_t>::max());
  EXPECT_FALSE(ParseUint32("4294967296").ok());
  EXPECT_FALSE(ParseUint32("-1").ok());
  EXPECT_FALSE(ParseUint32("3.0").ok());
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_EQ(ParseDouble("0.5").value(), 0.5);
  EXPECT_EQ(ParseDouble("-1e10").value(), -1e10);
  EXPECT_EQ(ParseDouble("3").value(), 3.0);
}

TEST(ParseDoubleTest, OverflowErrorsButUnderflowLoads) {
  EXPECT_FALSE(ParseDouble("1e999").ok());
  EXPECT_FALSE(ParseDouble("-1e999").ok());
  // Denormals must load back (FormatDouble emits them); underflow-to-zero
  // is likewise accepted.
  auto denormal = ParseDouble("4.9406564584124654e-324");
  ASSERT_TRUE(denormal.ok());
  EXPECT_EQ(denormal.value(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(ParseDouble("1e-9999").value(), 0.0);
}

TEST(ParseDoubleTest, RejectsJunk) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("0.5x").ok());
  EXPECT_FALSE(ParseDouble("1,5").ok());
}

TEST(FormatDoubleTest, RoundTripsBitwise) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0 / 3.0,
                          0.1,
                          1e300,
                          -1e-300,
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::min()};
  for (double value : cases) {
    auto back = ParseDouble(FormatDouble(value));
    ASSERT_TRUE(back.ok()) << FormatDouble(value);
    double reparsed = back.value();
    EXPECT_EQ(std::memcmp(&value, &reparsed, sizeof(double)), 0)
        << FormatDouble(value);
  }
}

TEST(FormatDoubleTest, RandomizedBitwiseRoundTrip) {
  // %.17g must reproduce any finite double exactly — the property the
  // model I/O round-trip (ITER weights, pair scores) rests on.
  Rng rng(2018);
  for (int i = 0; i < 20000; ++i) {
    uint64_t bits = rng.Next();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    if (!std::isfinite(value)) continue;
    auto back = ParseDouble(FormatDouble(value));
    ASSERT_TRUE(back.ok()) << FormatDouble(value);
    double reparsed = back.value();
    ASSERT_EQ(std::memcmp(&value, &reparsed, sizeof(double)), 0)
        << FormatDouble(value);
  }
}

}  // namespace
}  // namespace gter
