// Run-report / perf-diff tests: MetricsSnapshot round-trips a real
// registry dump, the report formats every section, and DiffSnapshots gates
// on mean-per-call regressions with the floor and threshold semantics the
// CI perf gate (tools/perf_gate.sh) relies on.

#include <string>

#include <gtest/gtest.h>

#include "gter/common/json.h"
#include "gter/common/metrics.h"
#include "gter/common/run_report.h"

namespace gter {
namespace {

MetricsSnapshot SnapshotOf(const MetricsRegistry& registry) {
  Result<JsonValue> doc = JsonValue::Parse(registry.ToJson());
  EXPECT_TRUE(doc.ok()) << doc.status();
  Result<MetricsSnapshot> snap = MetricsSnapshot::FromJson(doc.value());
  EXPECT_TRUE(snap.ok()) << snap.status();
  return snap.ok() ? std::move(snap).value() : MetricsSnapshot{};
}

TEST(MetricsSnapshot, RoundTripsRegistryDump) {
  MetricsRegistry registry;
  registry.AddCounter("stage/events", 42);
  registry.SetGauge("stage/bytes", 1.5e6);
  registry.RecordTime("stage/a", 0.5);
  registry.RecordTime("stage/a", 0.25);
  for (int i = 0; i < 256; ++i) registry.Observe("stage/dist", 256.0 + i);

  MetricsSnapshot snap = SnapshotOf(registry);
  EXPECT_EQ(snap.counters.at("stage/events"), 42u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("stage/bytes"), 1.5e6);
  EXPECT_EQ(snap.timers.at("stage/a").count, 2u);
  EXPECT_DOUBLE_EQ(snap.timers.at("stage/a").seconds, 0.75);
  EXPECT_DOUBLE_EQ(snap.timers.at("stage/a").MeanSeconds(), 0.375);
  const HistogramSummary& h = snap.histograms.at("stage/dist");
  EXPECT_EQ(h.count, 256u);
  EXPECT_DOUBLE_EQ(h.min, 256.0);
  EXPECT_DOUBLE_EQ(h.max, 511.0);
  EXPECT_DOUBLE_EQ(h.p50, 383.5);  // dump carries the exact percentiles
}

TEST(MetricsSnapshot, ReconstructsPercentilesFromBuckets) {
  // A dump written before percentiles were emitted inline: p50/p95/p99
  // must be rebuilt from the sparse `le` buckets.
  const char* old_dump = R"({
    "timers": {},
    "histograms": {
      "h/d": {"count": 256, "sum": 98176, "min": 256, "max": 511,
              "buckets": [{"le": 512, "count": 256}]}
    }
  })";
  Result<JsonValue> doc = JsonValue::Parse(old_dump);
  ASSERT_TRUE(doc.ok());
  Result<MetricsSnapshot> snap = MetricsSnapshot::FromJson(doc.value());
  ASSERT_TRUE(snap.ok());
  const HistogramSummary& h = snap.value().histograms.at("h/d");
  EXPECT_DOUBLE_EQ(h.p50, 383.5);
  EXPECT_DOUBLE_EQ(h.p95, 256.0 + 0.95 * 255.0);
}

TEST(MetricsSnapshot, RejectsNonObjectDocuments) {
  Result<JsonValue> doc = JsonValue::Parse("[1, 2]");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson(doc.value()).ok());
  EXPECT_FALSE(MetricsSnapshot::Load("/nonexistent-dir/m.json").ok());
}

TEST(FormatRunReport, ListsEverySection) {
  MetricsRegistry registry;
  registry.AddCounter("stage/events", 7);
  registry.SetGauge("stage/bytes", 64.0);
  registry.RecordTime("fusion/total", 2.0);
  registry.RecordTime("iter/sweep", 0.5);
  registry.Observe("stage/dist", 3.0);
  std::string report = FormatRunReport(SnapshotOf(registry));
  for (const char* expected :
       {"fusion/total", "iter/sweep", "stage/events", "stage/bytes",
        "stage/dist", "100.0%", "25.0%", "p50"}) {
    EXPECT_NE(report.find(expected), std::string::npos)
        << expected << "\n" << report;
  }
}

MetricsSnapshot TimersOnly(
    std::initializer_list<std::pair<const char*, TimerSummary>> timers) {
  MetricsSnapshot s;
  for (const auto& [name, t] : timers) s.timers[name] = t;
  return s;
}

TEST(DiffSnapshots, FlagsRegressionsPastThreshold) {
  MetricsSnapshot baseline = TimersOnly({{"fast", {100, 0.02}},
                                         {"slow", {10, 1.0}},
                                         {"steady", {10, 1.0}}});
  MetricsSnapshot candidate = TimersOnly({{"fast", {100, 0.02}},
                                          {"slow", {10, 1.5}},
                                          {"steady", {10, 1.04}}});
  PerfDiffOptions options;  // +10%, 100us floor
  PerfDiffResult diff = DiffSnapshots(baseline, candidate, options);
  // slow: mean 0.1 → 0.15 (+50%) regresses; steady: +4% does not.
  ASSERT_EQ(diff.regressions.size(), 1u);
  EXPECT_EQ(diff.regressions[0], "slow");
  EXPECT_NE(diff.report.find("REGRESSED"), std::string::npos);
  EXPECT_NE(diff.report.find("FAIL"), std::string::npos);
}

TEST(DiffSnapshots, FloorShieldsNoiseTimers) {
  // Baseline mean 10us sits under the 100us floor: even a 10x blowup is
  // reported but never gates.
  MetricsSnapshot baseline = TimersOnly({{"tiny", {1000, 0.01}}});
  MetricsSnapshot candidate = TimersOnly({{"tiny", {1000, 0.1}}});
  PerfDiffResult diff =
      DiffSnapshots(baseline, candidate, PerfDiffOptions{});
  EXPECT_TRUE(diff.regressions.empty());
  EXPECT_NE(diff.report.find("below floor"), std::string::npos);

  // Raising the ratio also shields: +50% passes a 100% threshold.
  MetricsSnapshot b2 = TimersOnly({{"slow", {10, 1.0}}});
  MetricsSnapshot c2 = TimersOnly({{"slow", {10, 1.5}}});
  PerfDiffOptions loose;
  loose.regress_ratio = 1.0;
  EXPECT_TRUE(DiffSnapshots(b2, c2, loose).regressions.empty());
}

TEST(DiffSnapshots, HandlesMissingAndNewTimers) {
  MetricsSnapshot baseline = TimersOnly({{"gone", {10, 1.0}}});
  MetricsSnapshot candidate = TimersOnly({{"new", {10, 1.0}}});
  PerfDiffResult diff =
      DiffSnapshots(baseline, candidate, PerfDiffOptions{});
  EXPECT_TRUE(diff.regressions.empty());  // neither direction gates
  EXPECT_NE(diff.report.find("missing in candidate"), std::string::npos);
  EXPECT_NE(diff.report.find("new in candidate"), std::string::npos);
  EXPECT_NE(diff.report.find("PASS"), std::string::npos);
}

TEST(DiffSnapshots, ImprovementIsNotARegression) {
  MetricsSnapshot baseline = TimersOnly({{"better", {10, 2.0}}});
  MetricsSnapshot candidate = TimersOnly({{"better", {10, 1.0}}});
  PerfDiffResult diff =
      DiffSnapshots(baseline, candidate, PerfDiffOptions{});
  EXPECT_TRUE(diff.regressions.empty());
  EXPECT_NE(diff.report.find("improved"), std::string::npos);
}

}  // namespace
}  // namespace gter
