// gter::JsonValue tests: the full value grammar, escape handling, accessor
// contracts, rejection of malformed documents, and the writer path
// (builder factories + Serialize) that frames gterd's NDJSON responses.

#include <cstdio>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "gter/common/json.h"

namespace gter {
namespace {

JsonValue MustParse(const std::string& text) {
  Result<JsonValue> r = JsonValue::Parse(text);
  EXPECT_TRUE(r.ok()) << text << "\n" << r.status();
  return r.ok() ? std::move(r).value() : JsonValue{};
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").boolean());
  EXPECT_FALSE(MustParse("false").boolean());
  EXPECT_DOUBLE_EQ(MustParse("42").number(), 42.0);
  EXPECT_DOUBLE_EQ(MustParse("-3.5e2").number(), -350.0);
  EXPECT_EQ(MustParse("\"hi\"").string(), "hi");
  EXPECT_DOUBLE_EQ(MustParse("  7  ").number(), 7.0);  // surrounding space
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b\\c\/d")").string(), "a\"b\\c/d");
  EXPECT_EQ(MustParse(R"("x\n\t\r\b\f")").string(), "x\n\t\r\b\f");
  EXPECT_EQ(MustParse(R"("\u0041\u00e9")").string(), "A\xC3\xA9");
}

TEST(JsonParse, NestedContainers) {
  JsonValue v = MustParse(
      R"({"timers": {"a/b": {"count": 2, "seconds": 0.5}},
          "list": [1, "two", null, {"k": true}]})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* timers = v.Find("timers");
  ASSERT_NE(timers, nullptr);
  const JsonValue* ab = timers->Find("a/b");
  ASSERT_NE(ab, nullptr);
  EXPECT_DOUBLE_EQ(ab->NumberOr("count", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(ab->NumberOr("seconds", -1.0), 0.5);
  EXPECT_DOUBLE_EQ(ab->NumberOr("missing", -1.0), -1.0);

  const JsonValue* list = v.Find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->array().size(), 4u);
  EXPECT_DOUBLE_EQ(list->array()[0].number(), 1.0);
  EXPECT_EQ(list->array()[1].string(), "two");
  EXPECT_TRUE(list->array()[2].is_null());
  EXPECT_TRUE(list->array()[3].Find("k")->boolean());

  EXPECT_EQ(v.Find("nope"), nullptr);
  EXPECT_EQ(list->Find("k"), nullptr);  // Find on a non-object
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(MustParse("{}").object().empty());
  EXPECT_TRUE(MustParse("[]").array().empty());
  EXPECT_TRUE(MustParse("[{}, []]").is_array());
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "\"unterminated", "{\"k\" 1}", "{\"k\":}", "tru",
        "1 2", "{} trailing", "[1 2]", "\"\\q\"", "\"\\u12", "\"\\ud800\"",
        "--5", "1.2.3", "nan"}) {
    EXPECT_FALSE(JsonValue::Parse(bad).ok()) << bad;
  }
}

TEST(JsonParse, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  // A depth comfortably under the limit parses.
  std::string ok(30, '[');
  ok += "1";
  ok += std::string(30, ']');
  EXPECT_TRUE(JsonValue::Parse(ok).ok());
}

TEST(JsonParse, DuplicateKeysLastWins) {
  JsonValue v = MustParse(R"({"k": 1, "k": 2})");
  EXPECT_DOUBLE_EQ(v.NumberOr("k", 0.0), 2.0);
}

TEST(JsonWrite, BuilderAndSerialize) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("name", JsonValue::MakeString("gterd"));
  obj.Set("count", JsonValue::MakeNumber(3));
  obj.Set("on", JsonValue::MakeBool(true));
  obj.Set("none", JsonValue::MakeNull());
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue::MakeNumber(1));
  arr.Append(JsonValue::MakeNumber(2.5));
  obj.Set("xs", std::move(arr));
  EXPECT_EQ(obj.Serialize(),
            R"({"count":3,"name":"gterd","none":null,"on":true,"xs":[1,2.5]})");
}

TEST(JsonWrite, SerializeParseRoundTrip) {
  JsonValue original = MustParse(
      R"({"a": [1, 2.5, true, null, "s"], "b": {"nested": {"deep": -0.125}},)"
      R"( "c": ""})");
  auto back = JsonValue::Parse(original.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().Serialize(), original.Serialize());
}

TEST(JsonWrite, EscapesKeepOutputSingleLine) {
  // NDJSON framing requires that no serialized frame contains a raw
  // newline — every control byte must be escaped.
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("text", JsonValue::MakeString("a\nb\rc\td\"e\\f\x01g"));
  std::string wire = obj.Serialize();
  EXPECT_EQ(wire.find('\n'), std::string::npos);
  EXPECT_EQ(wire.find('\r'), std::string::npos);
  EXPECT_NE(wire.find("\\n"), std::string::npos);
  EXPECT_NE(wire.find("\\u0001"), std::string::npos);
  auto back = JsonValue::Parse(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().Find("text")->string(), "a\nb\rc\td\"e\\f\x01g");
}

TEST(JsonWrite, NumbersUseExactIntegersAndRoundTrippableDoubles) {
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue::MakeNumber(9007199254740992.0));  // 2^53: integral
  arr.Append(JsonValue::MakeNumber(1.0 / 3.0));
  arr.Append(JsonValue::MakeNumber(-0.0));
  std::string wire = arr.Serialize();
  auto back = JsonValue::Parse(wire);
  ASSERT_TRUE(back.ok()) << wire;
  EXPECT_EQ(back.value().array()[0].number(), 9007199254740992.0);
  EXPECT_EQ(back.value().array()[1].number(), 1.0 / 3.0);
  // Integral values in the exact range print without an exponent.
  EXPECT_NE(wire.find("9007199254740992"), std::string::npos);
  EXPECT_EQ(wire.find("9.0071992547409920e"), std::string::npos);
}

TEST(JsonWrite, NonFiniteNumbersSerializeAsNull) {
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue::MakeNumber(std::numeric_limits<double>::infinity()));
  arr.Append(
      JsonValue::MakeNumber(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(arr.Serialize(), "[null,null]");
}

TEST(ReadFileToString, RoundTripsAndFails) {
  std::string path = ::testing::TempDir() + "/json_test_file.txt";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"x\": 1}", f);
  std::fclose(f);

  Result<std::string> text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "{\"x\": 1}");
  std::remove(path.c_str());

  EXPECT_FALSE(ReadFileToString("/nonexistent-dir/nope.json").ok());
}

}  // namespace
}  // namespace gter
