#ifndef GTER_TESTS_COMMON_JSON_TEST_PARSER_H_
#define GTER_TESTS_COMMON_JSON_TEST_PARSER_H_

// A minimal, independent JSON parser for validating the JSON the library
// emits (metrics dumps, trace files). Deliberately NOT gter::JsonValue:
// checking an emitter with the library's own parser would let a matching
// emitter/parser bug pass silently. Shared by metrics_test and trace_test.

#include <cctype>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace gter {
namespace testjson {

struct JsonValue {
  enum Kind { kObject, kArray, kString, kNumber } kind = kNumber;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0.0;

  bool Has(const std::string& key) const {
    return kind == kObject && object.count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_TRUE(it != object.end()) << "missing key: " << key;
    static const JsonValue kEmpty;
    return it == object.end() ? kEmpty : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code =
                std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16);
            pos_ += 4;
            if (code > 0x7F) return false;  // emitters are ASCII-only
            out->push_back(static_cast<char>(code));
            break;
          }
          default: return false;  // the emitters only produce these
        }
      } else {
        out->push_back(c);
      }
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue child;
        if (!ParseValue(&child)) return false;
        out->object.emplace(std::move(key), std::move(child));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      while (true) {
        JsonValue child;
        if (!ParseValue(&child)) return false;
        out->array.push_back(std::move(child));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->string);
    }
    out->kind = JsonValue::kNumber;
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace testjson
}  // namespace gter

#endif  // GTER_TESTS_COMMON_JSON_TEST_PARSER_H_
