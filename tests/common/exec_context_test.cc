#include "gter/common/exec_context.h"

#include <gtest/gtest.h>

#include "gter/common/cpu.h"
#include "gter/common/metrics.h"
#include "gter/common/trace.h"

namespace gter {
namespace {

TEST(CancelTokenTest, FreshTokenIsNotCancelled) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, CancelTripsAsCancelled) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  Status s = token.Check();
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_TRUE(IsCancellation(s));
}

TEST(CancelTokenTest, PastDeadlineTripsAsDeadlineExceeded) {
  CancelToken token;
  token.SetTimeout(-0.001);  // already expired
  EXPECT_TRUE(token.cancelled());
  Status s = token.Check();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsCancellation(s));
}

TEST(CancelTokenTest, FutureDeadlineDoesNotTrip) {
  CancelToken token;
  token.SetTimeout(3600.0);
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, CancelAfterPollsCountsExactly) {
  CancelToken token;
  token.CancelAfterPolls(3);
  // The next 3 polls pass, the 4th trips.
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.cancelled());
  // The hook classifies as a plain cancellation, not a deadline.
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, CancelAfterZeroPollsTripsTheNextPoll) {
  CancelToken token;
  token.CancelAfterPolls(0);
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, TrippedTokenStaysTripped) {
  CancelToken token;
  token.CancelAfterPolls(0);
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());
  EXPECT_FALSE(token.Check().ok());
}

TEST(CancelTokenTest, ResetRearmsAfterCancel) {
  CancelToken token;
  token.Cancel();
  ASSERT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, ResetClearsDeadlineAndClassification) {
  CancelToken token;
  token.SetTimeout(-0.001);
  ASSERT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
  token.Reset();
  EXPECT_TRUE(token.Check().ok());
  // A later plain cancel must not inherit the old deadline classification.
  token.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(IsCancellationTest, CoversExactlyTheTwoStopCodes) {
  EXPECT_TRUE(IsCancellation(Status::Cancelled("x")));
  EXPECT_TRUE(IsCancellation(Status::DeadlineExceeded("x")));
  EXPECT_FALSE(IsCancellation(Status::OK()));
  EXPECT_FALSE(IsCancellation(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsCancellation(Status::Internal("x")));
}

TEST(ExecContextTest, DefaultContextIsAmbientAndUncancellable) {
  const ExecContext& ctx = DefaultExecContext();
  EXPECT_EQ(ctx.pool, nullptr);
  EXPECT_EQ(ctx.metrics, nullptr);
  EXPECT_EQ(ctx.trace, nullptr);
  EXPECT_EQ(ctx.cancel, nullptr);
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_TRUE(ctx.CheckCancel().ok());
  EXPECT_EQ(ctx.simd_level(), ActiveSimdLevel());
}

TEST(ExecContextTest, WithCancelWiresTheToken) {
  CancelToken token;
  ExecContext ctx = ExecContext::WithCancel(&token);
  EXPECT_FALSE(ctx.cancelled());
  token.Cancel();
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_EQ(ctx.CheckCancel().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, ExplicitSimdLevelOverridesAmbient) {
  ExecContext ctx;
  ctx.simd = SimdLevel::kScalar;
  EXPECT_EQ(ctx.simd_level(), SimdLevel::kScalar);
}

TEST(ExecContextTest, ExplicitMetricsBeatTheInstalledRegistry) {
  MetricsRegistry installed;
  ScopedMetricsInstall install(&installed);
  MetricsRegistry explicit_registry;
  ExecContext ctx;
  EXPECT_EQ(ctx.metrics_or_ambient(), &installed);
  ctx.metrics = &explicit_registry;
  EXPECT_EQ(ctx.metrics_or_ambient(), &explicit_registry);
}

TEST(ExecContextTest, ExplicitTraceBeatsTheInstalledRecorder) {
  TraceRecorder installed;
  ScopedTraceInstall install(&installed);
  TraceRecorder explicit_recorder;
  ExecContext ctx;
  EXPECT_EQ(ctx.trace_or_ambient(), &installed);
  ctx.trace = &explicit_recorder;
  EXPECT_EQ(ctx.trace_or_ambient(), &explicit_recorder);
}

}  // namespace
}  // namespace gter
