#include "gter/common/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  size_t equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4u);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr size_t kBuckets = 10;
  constexpr size_t kDraws = 100000;
  std::vector<size_t> counts(kBuckets, 0);
  for (size_t i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / kBuckets,
                0.05 * kDraws / kBuckets);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, OpenUniformDoubleNeverZero) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.OpenUniformDouble(), 0.0);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  size_t hits = 0;
  constexpr size_t kDraws = 100000;
  for (size_t i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(17);
  constexpr size_t kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (size_t i = 0; i < kDraws; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(19);
  double sum = 0.0;
  constexpr size_t kDraws = 100000;
  for (size_t i = 0; i < kDraws; ++i) sum += rng.Gaussian(5.0, 0.1);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ShuffleWorksOnVectorBool) {
  Rng rng(23);
  std::vector<bool> items(10, false);
  items[0] = items[1] = items[2] = true;
  rng.Shuffle(&items);
  EXPECT_EQ(std::count(items.begin(), items.end(), true), 3);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(25);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(20, 8);
    EXPECT_EQ(sample.size(), 8u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (size_t v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(RngTest, SampleAllElements) {
  Rng rng(27);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng base(31);
  Rng child_a = base.Fork(0);
  Rng child_b = base.Fork(1);
  size_t equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a.Next() == child_b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4u);
  // Fork is deterministic in (seed, stream).
  Rng again = base.Fork(0);
  Rng child_a2 = Rng(31).Fork(0);
  EXPECT_EQ(again.Next(), child_a2.Next());
}

TEST(ZipfSamplerTest, RankZeroIsMostFrequent) {
  ZipfSampler sampler(100, 1.2);
  Rng rng(33);
  std::vector<size_t> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfSamplerTest, SamplesStayInRange) {
  ZipfSampler sampler(7, 0.8);
  Rng rng(35);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(sampler.Sample(&rng), 7u);
}

TEST(RngTest, ZipfDirectStaysInRange) {
  Rng rng(37);
  for (int i = 0; i < 200; ++i) {
    uint64_t v = rng.Zipf(50, 1.0);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 50u);
  }
}

}  // namespace
}  // namespace gter
