#include "gter/common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, DefaultPoolIsSingleton) {
  EXPECT_EQ(ThreadPool::Default(), ThreadPool::Default());
}

TEST(ParallelForTest, CoversWholeRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  ParallelFor(&pool, 0, 1000, 10, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 5, 5, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> touched(100, 0);
  ParallelFor(nullptr, 0, 100, 10, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++touched[i];
  });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 100);
}

TEST(ParallelForTest, SmallRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> touched(3, 0);
  ParallelFor(&pool, 0, 3, 100, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++touched[i];
  });
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(ParallelForTest, ZeroGrainIsTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  ParallelFor(&pool, 0, 50, 0, [&](size_t lo, size_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 50);
}

}  // namespace
}  // namespace gter
