#include "gter/common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, DefaultPoolIsSingleton) {
  EXPECT_EQ(ThreadPool::Default(), ThreadPool::Default());
}

TEST(ParallelForTest, CoversWholeRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  ParallelFor(&pool, 0, 1000, 10, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 5, 5, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> touched(100, 0);
  ParallelFor(nullptr, 0, 100, 10, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++touched[i];
  });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 100);
}

TEST(ParallelForTest, SmallRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> touched(3, 0);
  ParallelFor(&pool, 0, 3, 100, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++touched[i];
  });
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(ParallelForTest, ZeroGrainIsTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  ParallelFor(&pool, 0, 50, 0, [&](size_t lo, size_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 50);
}

TEST(TaskGroupTest, WaitCoversOnlyOwnGroup) {
  ThreadPool pool(4);
  // A long-running task in another group must not delay Wait() on ours.
  TaskGroup slow;
  std::atomic<bool> slow_started{false};
  std::atomic<bool> slow_done{false};
  ASSERT_TRUE(pool.Submit(&slow, [&] {
    slow_started.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    slow_done.store(true);
  }).ok());
  // Ensure the slow task is *running* (not queued, where a helping waiter
  // could legitimately pick it up).
  while (!slow_started.load()) std::this_thread::yield();

  TaskGroup fast;
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Submit(&fast, [&count] { count.fetch_add(1); }).ok());
  }
  pool.Wait(&fast);
  EXPECT_EQ(count.load(), 8);
  EXPECT_FALSE(slow_done.load());  // we did not wait for the other group
  pool.Wait(&slow);
  EXPECT_TRUE(slow_done.load());
}

TEST(TaskGroupTest, GroupIsReusableAfterWait) {
  ThreadPool pool(2);
  TaskGroup group;
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(pool.Submit(&group, [&count] { count.fetch_add(1); }).ok());
    }
    pool.Wait(&group);
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, SubmitDuringShutdownIsRejected) {
  std::atomic<bool> saw_rejection{false};
  std::atomic<int> noops{0};
  {
    ThreadPool pool(2);
    ASSERT_TRUE(pool.Submit([&] {
      // Keep submitting no-ops until destruction flips the pool into
      // shutdown; then Submit must fail cleanly instead of crashing.
      for (;;) {
        Status s = pool.Submit([&noops] { noops.fetch_add(1); });
        if (!s.ok()) {
          EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
          saw_rejection.store(true);
          return;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(saw_rejection.load());
}

TEST(ParallelForTest, NestedFromInsideWorkerDoesNotDeadlock) {
  // The pre-task-group pool deadlocked here: the outer chunks blocked in
  // Wait() while the inner chunks sat unexecuted in the queue.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  ParallelFor(&pool, 0, 32, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      ParallelFor(&pool, 0, 32, 1, [&](size_t ilo, size_t ihi) {
        total.fetch_add(static_cast<int>(ihi - ilo));
      });
    }
  });
  EXPECT_EQ(total.load(), 32 * 32);
}

TEST(ParallelForTest, DoublyNestedDoesNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  ParallelFor(&pool, 0, 8, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      ParallelFor(&pool, 0, 8, 1, [&](size_t mlo, size_t mhi) {
        for (size_t m = mlo; m < mhi; ++m) {
          ParallelFor(&pool, 0, 8, 1, [&](size_t ilo, size_t ihi) {
            total.fetch_add(static_cast<int>(ihi - ilo));
          });
        }
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 8 * 8);
}

TEST(ParallelForTest, ConcurrentCallersAreIndependent) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr size_t kItems = 20000;
  std::vector<std::vector<int>> touched(kCallers,
                                        std::vector<int>(kItems, 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &touched, c] {
      for (int round = 0; round < 10; ++round) {
        ParallelFor(&pool, 0, kItems, 64, [&touched, c](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) ++touched[c][i];
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(touched[c][i], 10) << "caller " << c << " index " << i;
    }
  }
}

TEST(ParallelForTest, ConcurrentAndNestedCombined) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 3; ++c) {
    callers.emplace_back([&] {
      ParallelFor(&pool, 0, 16, 1, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          ParallelFor(&pool, 0, 16, 1, [&](size_t ilo, size_t ihi) {
            total.fetch_add(static_cast<int>(ihi - ilo));
          });
        }
      });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 3 * 16 * 16);
}

}  // namespace
}  // namespace gter
