#include "gter/common/flags.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace gter {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(FlagsTest, DefaultsSurviveEmptyParse) {
  FlagSet flags;
  flags.AddInt("count", 5, "a count");
  flags.AddDouble("alpha", 2.5, "exponent");
  flags.AddBool("verbose", false, "log more");
  flags.AddString("name", "abc", "a name");
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags.GetInt("count"), 5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha"), 2.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetString("name"), "abc");
}

TEST(FlagsTest, EqualsSyntax) {
  FlagSet flags;
  flags.AddInt("count", 0, "");
  flags.AddDouble("alpha", 0, "");
  flags.AddString("name", "", "");
  std::vector<std::string> args = {"prog", "--count=42", "--alpha=1.25",
                                   "--name=xyz"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha"), 1.25);
  EXPECT_EQ(flags.GetString("name"), "xyz");
}

TEST(FlagsTest, SpaceSyntax) {
  FlagSet flags;
  flags.AddInt("count", 0, "");
  std::vector<std::string> args = {"prog", "--count", "7"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags.GetInt("count"), 7);
}

TEST(FlagsTest, BareBoolImpliesTrue) {
  FlagSet flags;
  flags.AddBool("verbose", false, "");
  std::vector<std::string> args = {"prog", "--verbose"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, BoolAcceptsExplicitValues) {
  FlagSet flags;
  flags.AddBool("a", false, "");
  flags.AddBool("b", true, "");
  std::vector<std::string> args = {"prog", "--a=true", "--b=false"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(flags.GetBool("a"));
  EXPECT_FALSE(flags.GetBool("b"));
}

TEST(FlagsTest, UnknownFlagIsError) {
  FlagSet flags;
  std::vector<std::string> args = {"prog", "--mystery=1"};
  auto argv = MakeArgv(args);
  Status s = flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, MalformedIntIsError) {
  FlagSet flags;
  flags.AddInt("count", 0, "");
  std::vector<std::string> args = {"prog", "--count=seven"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagsTest, MissingValueIsError) {
  FlagSet flags;
  flags.AddInt("count", 0, "");
  std::vector<std::string> args = {"prog", "--count"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagSet flags;
  flags.AddInt("count", 0, "");
  std::vector<std::string> args = {"prog", "input.csv", "--count=3", "out"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "out");
}

TEST(FlagsTest, IntOverflowIsAnErrorNotAClamp) {
  // strtoll used to saturate at INT64_MAX with errno ignored — the flag
  // silently became 9223372036854775807.
  FlagSet flags;
  flags.AddInt("count", 0, "");
  std::vector<std::string> args = {"prog",
                                   "--count=99999999999999999999999"};
  auto argv = MakeArgv(args);
  Status s = flags.Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, DoubleOverflowIsAnError) {
  FlagSet flags;
  flags.AddDouble("alpha", 0.0, "");
  std::vector<std::string> args = {"prog", "--alpha=1e999"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagsTest, NegativeAndBoundaryIntsStillParse) {
  FlagSet flags;
  flags.AddInt("count", 0, "");
  std::vector<std::string> args = {"prog", "--count=-9223372036854775808"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags.GetInt("count"), INT64_MIN);
}

TEST(FlagsTest, DoubleDashEndsFlagParsing) {
  FlagSet flags;
  flags.AddInt("count", 1, "");
  std::vector<std::string> args = {"prog", "--count=3", "--",
                                   "--count=9", "--not-a-flag", "plain"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags.GetInt("count"), 3);
  ASSERT_EQ(flags.positional().size(), 3u);
  EXPECT_EQ(flags.positional()[0], "--count=9");
  EXPECT_EQ(flags.positional()[1], "--not-a-flag");
  EXPECT_EQ(flags.positional()[2], "plain");
}

TEST(FlagsTest, UsageListsFlagsAndDefaults) {
  FlagSet flags;
  flags.AddInt("count", 5, "how many");
  flags.AddBool("verbose", false, "chatty");
  std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
  EXPECT_NE(usage.find("false"), std::string::npos);
}

}  // namespace
}  // namespace gter
