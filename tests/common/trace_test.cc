// TraceRecorder unit + concurrency tests: Chrome trace-event JSON schema
// (validated with the independent in-test parser), per-thread buffers and
// drop accounting, the install/restore contract, ScopedTimer's dual-sink
// behavior, ThreadPool worker naming and task spans, and an 8-thread
// recorder stress run with concurrent export (meaningful under -L tsan).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gter/common/metrics.h"
#include "gter/common/thread_pool.h"
#include "gter/common/trace.h"
#include "gter/core/fusion.h"
#include "gter/datagen/datagen.h"
#include "gter/er/preprocess.h"
#include "json_test_parser.h"

namespace gter {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

/// Parses a recorder's export and returns the traceEvents array after
/// checking the envelope.
std::vector<JsonValue> ParseTrace(const TraceRecorder& recorder) {
  std::string json = recorder.ToChromeJson();
  JsonValue root;
  EXPECT_TRUE(JsonParser(json).Parse(&root)) << json;
  EXPECT_EQ(root.At("displayTimeUnit").string, "ms");
  EXPECT_EQ(root.At("traceEvents").kind, JsonValue::kArray);
  return root.At("traceEvents").array;
}

TEST(TraceRecorder, ChromeJsonSchema) {
  TraceRecorder recorder;
  ScopedTraceInstall install(&recorder);
  const uint64_t t0 = TraceRecorder::NowNs();
  recorder.RecordSpan("stage/one", "stage", t0, 1500,
                      TraceArg{"round", 3.0});
  recorder.RecordSpan("stage/two", "pool", t0 + 2000, 250,
                      TraceArg{"a", 1.0}, TraceArg{"b", 2.5});
  recorder.RecordSpan("stage/bare", "stage", t0 + 3000, 1);

  std::vector<JsonValue> events = ParseTrace(recorder);
  size_t metadata = 0, complete = 0;
  bool saw_process_name = false;
  for (const JsonValue& e : events) {
    const std::string& ph = e.At("ph").string;
    if (ph == "M") {
      ++metadata;
      saw_process_name |= e.At("name").string == "process_name";
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    // Every complete event carries the full span schema.
    EXPECT_TRUE(e.Has("name"));
    EXPECT_TRUE(e.Has("cat"));
    EXPECT_TRUE(e.Has("pid"));
    EXPECT_TRUE(e.Has("tid"));
    EXPECT_GE(e.At("ts").number, 0.0);   // microseconds from recorder epoch
    EXPECT_GE(e.At("dur").number, 0.0);
    if (e.At("name").string == "stage/one") {
      EXPECT_EQ(e.At("cat").string, "stage");
      EXPECT_DOUBLE_EQ(e.At("dur").number, 1.5);  // 1500 ns = 1.5 us
      EXPECT_DOUBLE_EQ(e.At("args").At("round").number, 3.0);
    }
    if (e.At("name").string == "stage/two") {
      EXPECT_DOUBLE_EQ(e.At("args").At("a").number, 1.0);
      EXPECT_DOUBLE_EQ(e.At("args").At("b").number, 2.5);
    }
    if (e.At("name").string == "stage/bare") {
      EXPECT_FALSE(e.Has("args"));  // no args → no args object
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_GE(metadata, 2u);  // process_name + this thread's thread_name
  EXPECT_EQ(complete, 3u);
  EXPECT_EQ(recorder.event_count(), 3u);
  EXPECT_EQ(recorder.dropped_events(), 0u);
}

TEST(TraceRecorder, FixedCapacityCountsDrops) {
  TraceRecorder recorder(/*capacity_per_thread=*/4);
  const uint64_t t0 = TraceRecorder::NowNs();
  for (int i = 0; i < 10; ++i) {
    recorder.RecordSpan("s", "c", t0, 1);
  }
  EXPECT_EQ(recorder.event_count(), 4u);
  EXPECT_EQ(recorder.dropped_events(), 6u);
  // Export still succeeds and holds exactly the surviving events.
  size_t complete = 0;
  for (const JsonValue& e : ParseTrace(recorder)) {
    complete += e.At("ph").string == "X";
  }
  EXPECT_EQ(complete, 4u);
}

TEST(TraceRecorder, InstallNestsAndRestores) {
  EXPECT_EQ(TraceRecorder::Current(), nullptr);
  TraceRecorder outer, inner;
  {
    ScopedTraceInstall install_outer(&outer);
    EXPECT_EQ(TraceRecorder::Current(), &outer);
    {
      ScopedTraceInstall install_inner(&inner);
      EXPECT_EQ(TraceRecorder::Current(), &inner);
      GTER_TRACE_SPAN("inner/span");
    }
    EXPECT_EQ(TraceRecorder::Current(), &outer);
    GTER_TRACE_SPAN("outer/span");
  }
  EXPECT_EQ(TraceRecorder::Current(), nullptr);
  EXPECT_EQ(inner.event_count(), 1u);
  EXPECT_EQ(outer.event_count(), 1u);
  // A fresh recorder on this thread must not see the stale cached buffer
  // of a previous one (the TLS cache is keyed by recorder id).
  TraceRecorder fresh;
  {
    ScopedTraceInstall install(&fresh);
    GTER_TRACE_SPAN("fresh/span");
  }
  EXPECT_EQ(fresh.event_count(), 1u);
  EXPECT_EQ(outer.event_count(), 1u);
}

TEST(TraceRecorder, ScopedSpanIsNoOpWithoutRecorder) {
  ASSERT_EQ(TraceRecorder::Current(), nullptr);
  GTER_TRACE_SPAN("nothing/to", "see", TraceArg{"x", 1.0});
  // Nothing to assert beyond "does not crash, does not install".
  EXPECT_EQ(TraceRecorder::Current(), nullptr);
}

TEST(TraceRecorder, ScopedTimerFeedsBothSinks) {
  MetricsRegistry registry;
  TraceRecorder recorder;
  {
    ScopedTraceInstall trace_install(&recorder);
    GTER_TRACE_SCOPE_TO(&registry, "dual/stage", TraceArg{"round", 2.0});
  }
  // One timer entry and one span, from the same clock reads.
  EXPECT_EQ(registry.Timer("dual/stage").count, 1u);
  ASSERT_EQ(recorder.event_count(), 1u);
  bool found = false;
  for (const JsonValue& e : ParseTrace(recorder)) {
    if (e.At("ph").string != "X") continue;
    found = true;
    EXPECT_EQ(e.At("name").string, "dual/stage");
    EXPECT_EQ(e.At("cat").string, "stage");
    EXPECT_DOUBLE_EQ(e.At("args").At("round").number, 2.0);
    // Metrics seconds and span duration agree (same interval; the span is
    // nanosecond-truncated).
    EXPECT_NEAR(e.At("dur").number * 1e-6,
                registry.Timer("dual/stage").seconds, 1e-6);
  }
  EXPECT_TRUE(found);

  // Timer-only (no recorder) and span-only (null registry) still work.
  { GTER_TRACE_SCOPE_TO(&registry, "dual/stage"); }
  EXPECT_EQ(registry.Timer("dual/stage").count, 2u);
  EXPECT_EQ(recorder.event_count(), 1u);
  {
    ScopedTraceInstall trace_install(&recorder);
    GTER_TRACE_SCOPE_TO(nullptr, "dual/traced_only");
  }
  EXPECT_EQ(registry.Timer("dual/traced_only").count, 0u);
  EXPECT_EQ(recorder.event_count(), 2u);
}

TEST(TraceRecorder, ThreadPoolTasksGetNamedTracks) {
  TraceRecorder recorder;
  {
    ScopedTraceInstall install(&recorder);
    ThreadPool pool(3);
    // Barrier batch: each task spins until every task in the batch has
    // started. The help-draining waiter can run at most one of them, so at
    // least num_threads-1 must land on pool workers — guaranteeing a
    // pool-worker-* track regardless of scheduling.
    std::atomic<size_t> started{0};
    TaskGroup group;
    for (size_t i = 0; i < pool.num_threads(); ++i) {
      ASSERT_TRUE(pool.Submit(&group, [&started, &pool] {
                        started.fetch_add(1, std::memory_order_relaxed);
                        while (started.load(std::memory_order_relaxed) <
                               pool.num_threads()) {
                          std::this_thread::yield();
                        }
                      })
                      .ok());
    }
    pool.Wait(&group);
    ParallelFor(&pool, 0, 64, /*grain=*/4, [](size_t lo, size_t hi) {
      GTER_TRACE_SPAN("work/chunk", "test");
      volatile double sink = 0.0;
      for (size_t i = lo; i < hi; ++i) sink = sink + static_cast<double>(i);
    });
  }
  size_t pool_tasks = 0, chunks = 0, worker_tracks = 0;
  for (const JsonValue& e : ParseTrace(recorder)) {
    const std::string& ph = e.At("ph").string;
    if (ph == "M" && e.At("name").string == "thread_name") {
      worker_tracks +=
          e.At("args").At("name").string.rfind("pool-worker-", 0) == 0;
    }
    if (ph != "X") continue;
    pool_tasks += e.At("name").string == "pool/task";
    chunks += e.At("name").string == "work/chunk";
  }
  // Every barrier task and every chunk ran as a pool task; the barrier
  // pinned at least num_threads-1 of them to named worker tracks.
  EXPECT_GT(chunks, 0u);
  EXPECT_EQ(pool_tasks, chunks + 3);
  EXPECT_GE(worker_tracks, 2u);
  EXPECT_EQ(recorder.dropped_events(), 0u);
}

TEST(TraceRecorder, WriteTraceJsonRoundTrips) {
  TraceRecorder recorder;
  recorder.RecordSpan("x/y", "stage", TraceRecorder::NowNs(), 42);
  std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(WriteTraceJson(path, recorder).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(f);
  std::remove(path.c_str());

  JsonValue root;
  ASSERT_TRUE(JsonParser(contents).Parse(&root));
  EXPECT_EQ(root.At("traceEvents").kind, JsonValue::kArray);

  EXPECT_FALSE(WriteTraceJson("/nonexistent-dir/t.json", recorder).ok());
}

TEST(TraceRecorder, ConcurrentRecordingAndExportStress) {
  // 8 writer threads record through the macro while the main thread
  // repeatedly exports — the reader/writer interleaving TSAN checks.
  TraceRecorder recorder(/*capacity_per_thread=*/1 << 12);
  ScopedTraceInstall install(&recorder);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&go, t] {
      SetCurrentThreadTraceName("stress-" + std::to_string(t));
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kSpansPerThread; ++i) {
        GTER_TRACE_SPAN("stress/span", "stress",
                        TraceArg{"i", static_cast<double>(i)});
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int round = 0; round < 20; ++round) {
    // Must parse cleanly even while half-written (readers only see the
    // published prefix of each thread's buffer).
    JsonValue root;
    std::string json = recorder.ToChromeJson();
    ASSERT_TRUE(JsonParser(json).Parse(&root));
  }
  for (std::thread& t : writers) t.join();

  const uint64_t capacity = uint64_t{1} << 12;
  const uint64_t per_thread =
      std::min<uint64_t>(kSpansPerThread, capacity);
  EXPECT_EQ(recorder.event_count() + recorder.dropped_events(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(recorder.event_count(),
            static_cast<uint64_t>(kThreads) * per_thread);

  size_t named_tracks = 0;
  for (const JsonValue& e : ParseTrace(recorder)) {
    if (e.At("ph").string == "M" && e.At("name").string == "thread_name") {
      named_tracks += e.At("args").At("name").string.rfind("stress-", 0) == 0;
    }
  }
  EXPECT_EQ(named_tracks, static_cast<size_t>(kThreads));
}

TEST(PipelineTrace, FusionRunEmitsStageSpans) {
  // End-to-end wiring: a pipeline run with a recorder installed — and
  // deliberately NO metrics registry — produces the documented stage spans
  // with their numeric args.
  TraceRecorder recorder;
  {
    ScopedTraceInstall install(&recorder);
    GeneratedDataset data =
        GenerateBenchmark(BenchmarkKind::kRestaurant, 0.1, 7);
    RemoveFrequentTerms(&data.dataset);
    FusionConfig config;
    config.rounds = 2;
    FusionPipeline pipeline(data.dataset, config);
    pipeline.Run().value();
  }
  size_t rounds = 0, sweeps = 0, totals = 0;
  double max_round_arg = 0.0;
  for (const JsonValue& e : ParseTrace(recorder)) {
    if (e.At("ph").string != "X") continue;
    const std::string& name = e.At("name").string;
    if (name == "fusion/round") {
      ++rounds;
      max_round_arg = std::max(max_round_arg, e.At("args").At("round").number);
    }
    sweeps += name == "iter/sweep";
    totals += name == "fusion/total";
  }
  EXPECT_EQ(totals, 1u);
  EXPECT_EQ(rounds, 2u);
  EXPECT_DOUBLE_EQ(max_round_arg, 2.0);  // rounds are 1-based
  EXPECT_GT(sweeps, 0u);
}

}  // namespace
}  // namespace gter
