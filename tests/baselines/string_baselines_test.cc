#include <gtest/gtest.h>

#include "gter/baselines/edit_distance_resolver.h"
#include "gter/baselines/jaccard_resolver.h"
#include "gter/baselines/tfidf_resolver.h"

namespace gter {
namespace {

struct Fixture {
  Dataset ds{"test"};
  PairSpace pairs;
  Fixture() {
    ds.AddRecord(0, "golden dragon palace main street");  // 0
    ds.AddRecord(0, "golden dragon palace main st");      // 1 near-dup of 0
    ds.AddRecord(0, "blue ocean grill main street");      // 2
    pairs = PairSpace::Build(ds);
  }
};

TEST(JaccardScorerTest, NearDuplicateScoresHighest) {
  Fixture f;
  JaccardScorer scorer;
  EXPECT_EQ(scorer.name(), "Jaccard");
  auto scores = scorer.Score(f.ds, f.pairs);
  ASSERT_EQ(scores.size(), f.pairs.size());
  EXPECT_GT(scores[f.pairs.Find(0, 1)], scores[f.pairs.Find(0, 2)]);
  EXPECT_GT(scores[f.pairs.Find(0, 1)], scores[f.pairs.Find(1, 2)]);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(JaccardScorerTest, ExactValue) {
  Fixture f;
  JaccardScorer scorer;
  auto scores = scorer.Score(f.ds, f.pairs);
  // Records 0 and 1: terms {golden,dragon,palace,main,street} vs
  // {golden,dragon,palace,main,st} — 4 shared, 6 union.
  EXPECT_NEAR(scores[f.pairs.Find(0, 1)], 4.0 / 6.0, 1e-12);
}

TEST(TfIdfScorerTest, NearDuplicateScoresHighest) {
  Fixture f;
  TfIdfScorer scorer;
  EXPECT_EQ(scorer.name(), "TF-IDF");
  auto scores = scorer.Score(f.ds, f.pairs);
  EXPECT_GT(scores[f.pairs.Find(0, 1)], scores[f.pairs.Find(0, 2)]);
}

TEST(TfIdfScorerTest, DiscriminativeTermsDominateCommonOnes) {
  Dataset ds("test");
  // Pairs (0,1) share the rare model code; (2,3) share only frequent words.
  ds.AddRecord(0, "sony pslx350h turntable system");
  ds.AddRecord(0, "sony pslx350h turntable deck");
  ds.AddRecord(0, "sony turntable system deck");
  ds.AddRecord(0, "sony turntable system player");
  PairSpace pairs = PairSpace::Build(ds);
  TfIdfScorer scorer;
  auto scores = scorer.Score(ds, pairs);
  EXPECT_GT(scores[pairs.Find(0, 1)], scores[pairs.Find(2, 3)]);
}

TEST(EditDistanceScorerTest, OrdersBySurfaceSimilarity) {
  Fixture f;
  EditDistanceScorer scorer;
  EXPECT_EQ(scorer.name(), "EditDistance");
  auto scores = scorer.Score(f.ds, f.pairs);
  EXPECT_GT(scores[f.pairs.Find(0, 1)], scores[f.pairs.Find(0, 2)]);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

}  // namespace
}  // namespace gter
