#include "gter/baselines/hybrid.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

struct Fixture {
  Dataset ds{"test"};
  PairSpace pairs;
  Fixture() {
    ds.AddRecord(0, "golden dragon palace");
    ds.AddRecord(0, "golden dragon house");
    ds.AddRecord(0, "blue ocean palace");
    pairs = PairSpace::Build(ds);
  }
};

TEST(HybridTest, ScoresAreNormalizedCombination) {
  Fixture f;
  HybridScorer scorer;
  EXPECT_EQ(scorer.name(), "Hybrid");
  auto scores = scorer.Score(f.ds, f.pairs);
  ASSERT_EQ(scores.size(), f.pairs.size());
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(HybridTest, BetaZeroEqualsTextualRanking) {
  Fixture f;
  HybridOptions options;
  options.beta = 0.0;
  HybridScorer hybrid(options);
  TwIdfPageRankScorer twidf(options.twidf);
  auto h = hybrid.Score(f.ds, f.pairs);
  auto t = twidf.Score(f.ds, f.pairs);
  // Same ranking (h is max-normalized t).
  EXPECT_EQ(std::max_element(h.begin(), h.end()) - h.begin(),
            std::max_element(t.begin(), t.end()) - t.begin());
}

TEST(HybridTest, BetaOneEqualsTopologicalRanking) {
  Fixture f;
  HybridOptions options;
  options.beta = 1.0;
  HybridScorer hybrid(options);
  SimRankScorer simrank(options.simrank);
  auto h = hybrid.Score(f.ds, f.pairs);
  auto s = simrank.Score(f.ds, f.pairs);
  EXPECT_EQ(std::max_element(h.begin(), h.end()) - h.begin(),
            std::max_element(s.begin(), s.end()) - s.begin());
}

TEST(HybridTest, NearDuplicatePreferred) {
  Fixture f;
  HybridScorer scorer;
  auto scores = scorer.Score(f.ds, f.pairs);
  EXPECT_GT(scores[f.pairs.Find(0, 1)], scores[f.pairs.Find(0, 2)]);
}

}  // namespace
}  // namespace gter
