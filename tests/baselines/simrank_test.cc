#include "gter/baselines/simrank.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(SimRankTest, IdenticalTermSetsScoreHighest) {
  Dataset ds("test");
  ds.AddRecord(0, "a b c");  // 0
  ds.AddRecord(0, "a b c");  // 1 identical
  ds.AddRecord(0, "a x y");  // 2 partially overlapping
  PairSpace pairs = PairSpace::Build(ds);
  SimRankScorer scorer;
  auto scores = scorer.Score(ds, pairs);
  EXPECT_GT(scores[pairs.Find(0, 1)], scores[pairs.Find(0, 2)]);
}

TEST(SimRankTest, ScoresBoundedByDecayFactor) {
  Dataset ds("test");
  ds.AddRecord(0, "p q");
  ds.AddRecord(0, "p q");
  ds.AddRecord(0, "q r");
  PairSpace pairs = PairSpace::Build(ds);
  SimRankScorer scorer;
  auto scores = scorer.Score(ds, pairs);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 0.8 + 1e-12);  // off-diagonal SimRank ≤ C1
  }
}

TEST(SimRankTest, StructuralSimilarityWithoutDirectOverlapIsCaptured) {
  // Records 0 and 1 share no term, but their terms co-occur with the same
  // terms elsewhere — SimRank still assigns nonzero similarity (accessible
  // through record_similarity(); PairSpace excludes such pairs).
  Dataset ds("test");
  ds.AddRecord(0, "a x");  // 0
  ds.AddRecord(0, "b x");  // 1 (x links a and b)
  ds.AddRecord(0, "a b");  // 2
  PairSpace pairs = PairSpace::Build(ds);
  SimRankScorer scorer;
  scorer.Score(ds, pairs);
  EXPECT_GT(scorer.record_similarity()(0, 1), 0.0);
}

TEST(SimRankTest, DiagonalIsOne) {
  Dataset ds("test");
  ds.AddRecord(0, "m n");
  ds.AddRecord(0, "n o");
  PairSpace pairs = PairSpace::Build(ds);
  SimRankScorer scorer;
  scorer.Score(ds, pairs);
  EXPECT_DOUBLE_EQ(scorer.record_similarity()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(scorer.record_similarity()(1, 1), 1.0);
}

TEST(SimRankTest, MoreIterationsRefineScores) {
  Dataset ds("test");
  ds.AddRecord(0, "a b");
  ds.AddRecord(0, "a c");
  ds.AddRecord(0, "b c");
  PairSpace pairs = PairSpace::Build(ds);
  SimRankOptions one_iter;
  one_iter.iterations = 1;
  SimRankOptions five_iter;
  five_iter.iterations = 5;
  auto s1 = SimRankScorer(one_iter).Score(ds, pairs);
  auto s5 = SimRankScorer(five_iter).Score(ds, pairs);
  // Scores grow as longer meeting paths accumulate.
  for (PairId p = 0; p < pairs.size(); ++p) EXPECT_GE(s5[p] + 1e-12, s1[p]);
}

TEST(SimRankTest, SymmetricScores) {
  Dataset ds("test");
  ds.AddRecord(0, "u v w");
  ds.AddRecord(0, "u v");
  PairSpace pairs = PairSpace::Build(ds);
  SimRankScorer scorer;
  scorer.Score(ds, pairs);
  EXPECT_NEAR(scorer.record_similarity()(0, 1),
              scorer.record_similarity()(1, 0), 1e-12);
}

}  // namespace
}  // namespace gter
