#include "gter/baselines/twidf_pagerank.h"

#include <gtest/gtest.h>

namespace gter {
namespace {

TEST(TwIdfTest, SharedRareTermsBeatSharedCommonOnes) {
  Dataset ds("test");
  // (0,1) share the rare "pslx350h"; (2,3) share only ubiquitous "sony".
  ds.AddRecord(0, "sony pslx350h turntable");
  ds.AddRecord(0, "sony pslx350h deck");
  ds.AddRecord(0, "sony radio alarm");
  ds.AddRecord(0, "sony speaker dock");
  PairSpace pairs = PairSpace::Build(ds);
  TwIdfPageRankScorer scorer;
  EXPECT_EQ(scorer.name(), "PageRank");
  auto scores = scorer.Score(ds, pairs);
  EXPECT_GT(scores[pairs.Find(0, 1)], scores[pairs.Find(2, 3)]);
}

TEST(TwIdfTest, NoSharedTermsScoreZero) {
  Dataset ds("test");
  ds.AddRecord(0, "a b shared");
  ds.AddRecord(0, "c d shared");
  PairSpace pairs = PairSpace::Build(ds);
  TwIdfPageRankScorer scorer;
  auto scores = scorer.Score(ds, pairs);
  // The only shared term is "shared" — score equals salience·idf of it.
  EXPECT_GT(scores[0], 0.0);
}

TEST(TwIdfTest, SalienceExposedForTableIV) {
  Dataset ds("test");
  ds.AddRecord(0, "hub a");
  ds.AddRecord(0, "hub b");
  ds.AddRecord(0, "hub c");
  PairSpace pairs = PairSpace::Build(ds);
  TwIdfPageRankScorer scorer;
  scorer.Score(ds, pairs);
  ASSERT_EQ(scorer.term_salience().size(), ds.vocabulary().size());
  TermId hub = ds.vocabulary().Lookup("hub");
  TermId a = ds.vocabulary().Lookup("a");
  EXPECT_GT(scorer.term_salience()[hub], scorer.term_salience()[a]);
}

TEST(TwIdfTest, MoreSharedTermsNeverLowerScore) {
  Dataset ds("test");
  ds.AddRecord(0, "x y z");
  ds.AddRecord(0, "x y z");  // shares 3 with record 0
  ds.AddRecord(0, "x q r");  // shares 1 with record 0
  PairSpace pairs = PairSpace::Build(ds);
  TwIdfPageRankScorer scorer;
  auto scores = scorer.Score(ds, pairs);
  EXPECT_GT(scores[pairs.Find(0, 1)], scores[pairs.Find(0, 2)]);
}

}  // namespace
}  // namespace gter
