#include <gtest/gtest.h>

#include "gter/baselines/crowd/acd.h"
#include "gter/baselines/crowd/crowder.h"
#include "gter/baselines/crowd/gcer.h"
#include "gter/baselines/crowd/power_plus.h"
#include "gter/baselines/crowd/transm.h"
#include "gter/baselines/jaccard_resolver.h"
#include "gter/datagen/datagen.h"
#include "gter/er/preprocess.h"
#include "gter/eval/confusion.h"

namespace gter {
namespace {

struct CrowdFixture {
  GeneratedDataset data;
  PairSpace pairs;
  std::vector<bool> labels;
  std::vector<double> machine;
  uint64_t positives;

  CrowdFixture()
      : data(GenerateBenchmark(BenchmarkKind::kRestaurant, 0.15, 31)) {
    RemoveFrequentTerms(&data.dataset);
    pairs = PairSpace::Build(data.dataset);
    labels = LabelPairs(pairs, data.truth);
    machine = JaccardScorer().Score(data.dataset, pairs);
    positives = TotalPositives(data.dataset, data.truth);
  }

  double F1(const std::vector<bool>& matches) const {
    return EvaluatePairPredictions(pairs, matches, labels, positives).F1();
  }
};

TEST(OracleTest, PerfectOracleMatchesTruth) {
  GroundTruth truth({0, 0, 1});
  CrowdOracle oracle(truth, 0.0, 1);
  EXPECT_TRUE(oracle.Ask(0, 1));
  EXPECT_FALSE(oracle.Ask(0, 2));
  EXPECT_EQ(oracle.questions_asked(), 2u);
}

TEST(OracleTest, CachedQuestionsAreFree) {
  GroundTruth truth({0, 0});
  CrowdOracle oracle(truth, 0.0, 1);
  oracle.Ask(0, 1);
  oracle.Ask(0, 1);
  oracle.Ask(1, 0);  // order-insensitive cache key
  EXPECT_EQ(oracle.questions_asked(), 1u);
}

TEST(OracleTest, ErrorRateApproximatelyRealized) {
  GroundTruth truth(std::vector<EntityId>(2000, 0));
  CrowdOracle oracle(truth, 0.2, 7);
  size_t wrong = 0;
  for (uint32_t i = 0; i + 1 < 2000; i += 2) {
    if (!oracle.Ask(i, i + 1)) ++wrong;  // truth is always "match"
  }
  double rate = static_cast<double>(wrong) / 1000.0;
  EXPECT_NEAR(rate, 0.2, 0.05);
  EXPECT_NEAR(oracle.observed_error_rate(), rate, 1e-12);
}

TEST(OracleTest, MajorityVoteReducesError) {
  GroundTruth truth(std::vector<EntityId>(2000, 0));
  CrowdOracle single(truth, 0.25, 9);
  CrowdOracle majority(truth, 0.25, 9);
  size_t wrong_single = 0, wrong_majority = 0;
  for (uint32_t i = 0; i + 1 < 2000; i += 2) {
    if (!single.Ask(i, i + 1)) ++wrong_single;
    if (!majority.AskMajority(i, i + 1, 5)) ++wrong_majority;
  }
  EXPECT_LT(wrong_majority, wrong_single);
}

TEST(CrowdErTest, PerfectOracleYieldsHighF1) {
  CrowdFixture f;
  CrowdOracle oracle(f.data.truth, 0.0, 3);
  CrowdRunResult result = RunCrowdEr(f.pairs, f.machine, &oracle, {});
  EXPECT_GT(f.F1(result.matches), 0.85);
  EXPECT_GT(result.questions, 0u);
}

TEST(CrowdErTest, BudgetLimitsQuestions) {
  CrowdFixture f;
  CrowdOracle oracle(f.data.truth, 0.0, 3);
  CrowdErOptions options;
  options.budget = 10;
  CrowdRunResult result = RunCrowdEr(f.pairs, f.machine, &oracle, options);
  EXPECT_LE(result.questions, 10u);
}

TEST(TransMTest, TransitivityReducesQuestionsVsCrowdEr) {
  // On a dataset with clusters ≥ 3, transitive inference must save asks.
  auto data = GenerateBenchmark(BenchmarkKind::kPaper, 0.05, 11);
  RemoveFrequentTerms(&data.dataset);
  PairSpace pairs = PairSpace::Build(data.dataset);
  auto machine = JaccardScorer().Score(data.dataset, pairs);
  CrowdOracle o1(data.truth, 0.0, 5);
  CrowdOracle o2(data.truth, 0.0, 5);
  auto crowder = RunCrowdEr(pairs, machine, &o1, {});
  auto transm = RunTransM(pairs, machine, &o2, {});
  EXPECT_LT(transm.questions, crowder.questions);
  auto labels = LabelPairs(pairs, data.truth);
  uint64_t positives = TotalPositives(data.dataset, data.truth);
  double f1_transm =
      EvaluatePairPredictions(pairs, transm.matches, labels, positives).F1();
  EXPECT_GT(f1_transm, 0.7);
}

TEST(GcerTest, RespectsBudgetAndStaysReasonable) {
  CrowdFixture f;
  CrowdOracle oracle(f.data.truth, 0.0, 13);
  GcerOptions options;
  options.budget = 200;
  CrowdRunResult result = RunGcer(f.pairs, f.machine, &oracle, options);
  EXPECT_LE(result.questions, 200u);
  EXPECT_GT(f.F1(result.matches), 0.5);
}

TEST(AcdTest, RepairsNoisyAnswers) {
  CrowdFixture f;
  // A noisy oracle: ACD's majority-vote repair should beat raw TransM.
  CrowdOracle noisy1(f.data.truth, 0.12, 17);
  CrowdOracle noisy2(f.data.truth, 0.12, 17);
  auto transm = RunTransM(f.pairs, f.machine, &noisy1, {});
  auto acd = RunAcd(f.pairs, f.machine, &noisy2, {});
  EXPECT_GE(f.F1(acd.matches) + 0.05, f.F1(transm.matches));
}

TEST(PowerPlusTest, FarFewerQuestionsThanPairCount) {
  // On a large candidate set the binary search plus fringe verification
  // costs O(log n + fringe), far below per-pair verification.
  auto data = GenerateBenchmark(BenchmarkKind::kPaper, 0.1, 23);
  RemoveFrequentTerms(&data.dataset);
  PairSpace pairs = PairSpace::Build(data.dataset);
  auto machine = JaccardScorer().Score(data.dataset, pairs);
  CrowdOracle oracle(data.truth, 0.0, 19);
  CrowdRunResult result = RunPowerPlus(pairs, machine, &oracle, {});
  EXPECT_LT(result.questions, pairs.size() / 4);
  auto labels = LabelPairs(pairs, data.truth);
  uint64_t positives = TotalPositives(data.dataset, data.truth);
  double f1 =
      EvaluatePairPredictions(pairs, result.matches, labels, positives).F1();
  EXPECT_GT(f1, 0.6);
}

TEST(PowerPlusTest, EmptyCandidateSetHandled) {
  Dataset ds("test");
  ds.AddRecord(0, "x");
  ds.AddRecord(0, "y");
  PairSpace pairs = PairSpace::Build(ds);
  GroundTruth truth({0, 1});
  CrowdOracle oracle(truth, 0.0, 1);
  CrowdRunResult result = RunPowerPlus(pairs, {}, &oracle, {});
  EXPECT_TRUE(result.matches.empty());
  EXPECT_EQ(result.questions, 0u);
}

}  // namespace
}  // namespace gter
