#include <gtest/gtest.h>

#include "gter/baselines/ml/bootstrap_gmm.h"
#include "gter/common/random.h"
#include "gter/baselines/ml/features.h"
#include "gter/baselines/ml/fellegi_sunter.h"
#include "gter/baselines/ml/gmm.h"
#include "gter/baselines/ml/linear_svm.h"
#include "gter/datagen/datagen.h"
#include "gter/er/preprocess.h"
#include "gter/eval/confusion.h"
#include "gter/eval/threshold_sweep.h"

namespace gter {
namespace {

struct BenchFixture {
  GeneratedDataset data;
  PairSpace pairs;
  std::vector<bool> labels;
  std::vector<std::vector<double>> features;

  explicit BenchFixture(double scale = 0.12)
      : data(GenerateBenchmark(BenchmarkKind::kRestaurant, scale, 21)) {
    RemoveFrequentTerms(&data.dataset);
    pairs = PairSpace::Build(data.dataset);
    labels = LabelPairs(pairs, data.truth);
    features = ComputePairFeatures(data.dataset, pairs);
  }
};

TEST(FeaturesTest, ShapeAndRange) {
  BenchFixture f;
  ASSERT_EQ(f.features.size(), f.pairs.size());
  size_t dim = PairFeatureNames({}).size();
  for (const auto& row : f.features) {
    ASSERT_EQ(row.size(), dim);
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-9);
    }
  }
}

TEST(FeaturesTest, LevenshteinOptional) {
  BenchFixture f;
  PairFeatureOptions options;
  options.include_levenshtein = true;
  auto names = PairFeatureNames(options);
  EXPECT_EQ(names.back(), "levenshtein");
  Dataset tiny("t");
  tiny.AddRecord(0, "abc x");
  tiny.AddRecord(0, "abd x");
  PairSpace pairs = PairSpace::Build(tiny);
  auto rows = ComputePairFeatures(tiny, pairs, options);
  ASSERT_EQ(rows[0].size(), names.size());
}

TEST(FeaturesTest, MatchesScoreHigherOnAverage) {
  BenchFixture f;
  double pos_sum = 0.0, neg_sum = 0.0;
  size_t pos = 0, neg = 0;
  for (PairId p = 0; p < f.pairs.size(); ++p) {
    double mass = 0.0;
    for (double v : f.features[p]) mass += v;
    if (f.labels[p]) {
      pos_sum += mass;
      ++pos;
    } else {
      neg_sum += mass;
      ++neg;
    }
  }
  ASSERT_GT(pos, 0u);
  ASSERT_GT(neg, 0u);
  EXPECT_GT(pos_sum / pos, neg_sum / neg);
}

TEST(GmmTest, SeparatesTwoGaussians) {
  Rng rng(1);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back({rng.Gaussian(0.2, 0.05), rng.Gaussian(0.25, 0.05)});
  }
  for (int i = 0; i < 100; ++i) {
    rows.push_back({rng.Gaussian(0.8, 0.05), rng.Gaussian(0.75, 0.05)});
  }
  GaussianMixture gmm;
  gmm.Fit(rows);
  size_t match = gmm.HighestMeanComponent();
  // Points from the high cluster must get high posterior.
  size_t correct = 0;
  for (size_t i = 300; i < 400; ++i) {
    if (gmm.Posterior(rows[i])[match] > 0.5) ++correct;
  }
  EXPECT_GT(correct, 95u);
  // Mixture weight of the match component ≈ 0.25.
  EXPECT_NEAR(gmm.weight(match), 0.25, 0.05);
}

TEST(GmmTest, PosteriorsSumToOne) {
  Rng rng(2);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back({rng.UniformDouble(), rng.UniformDouble()});
  }
  GaussianMixture gmm;
  GmmOptions options;
  options.num_components = 3;
  gmm.Fit(rows, options);
  for (const auto& row : rows) {
    auto post = gmm.Posterior(row);
    double total = 0.0;
    for (double p : post) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(GmmTest, ResolvesRestaurantPairsUnsupervised) {
  BenchFixture f;
  auto prob = GmmMatchProbability(f.features);
  uint64_t positives = TotalPositives(f.data.dataset, f.data.truth);
  SweepResult sweep = BestF1Threshold(prob, f.labels, positives);
  EXPECT_GT(sweep.f1, 0.5);
}

TEST(BootstrapGmmTest, AtLeastAsGoodAsPlainGmm) {
  BenchFixture f;
  uint64_t positives = TotalPositives(f.data.dataset, f.data.truth);
  auto plain = GmmMatchProbability(f.features);
  auto boot = BootstrapGmmMatchProbability(f.features);
  double f1_plain = BestF1Threshold(plain, f.labels, positives).f1;
  double f1_boot = BestF1Threshold(boot, f.labels, positives).f1;
  EXPECT_GE(f1_boot, f1_plain - 0.05);
}

TEST(FellegiSunterTest, LearnsFieldReliabilities) {
  BenchFixture f;
  FellegiSunterResult result =
      FitFellegiSunter(f.data.dataset, f.pairs, {});
  ASSERT_EQ(result.m.size(), 5u);  // restaurant records have 5 fields
  // Phone (field 3) agrees on matches and almost never on non-matches.
  EXPECT_GT(result.m[3], 0.5);
  EXPECT_LT(result.u[3], 0.1);
  uint64_t positives = TotalPositives(f.data.dataset, f.data.truth);
  SweepResult sweep = BestF1Threshold(result.probability, f.labels, positives);
  EXPECT_GT(sweep.f1, 0.6);
}

TEST(FellegiSunterTest, PriorReflectsMatchRate) {
  BenchFixture f;
  FellegiSunterResult result =
      FitFellegiSunter(f.data.dataset, f.pairs, {});
  double actual_rate = 0.0;
  for (bool l : f.labels) actual_rate += l;
  actual_rate /= static_cast<double>(f.labels.size());
  EXPECT_NEAR(result.match_prior, actual_rate, 0.1);
}

TEST(SvmTest, TrainedModelSeparatesTestPairs) {
  BenchFixture f;
  uint64_t positives = TotalPositives(f.data.dataset, f.data.truth);
  auto scores = SvmMatchScore(f.features, f.labels);
  SweepResult sweep = BestF1Threshold(scores, f.labels, positives);
  EXPECT_GT(sweep.f1, 0.6);
}

TEST(SvmTest, MarginIsLinear) {
  LinearSvm model;
  model.weights = {2.0, -1.0};
  model.bias = 0.5;
  EXPECT_DOUBLE_EQ(model.Margin({1.0, 1.0}), 1.5);
  EXPECT_DOUBLE_EQ(model.Margin({0.0, 0.0}), 0.5);
}

TEST(SvmTest, PegasosLearnsSeparableData) {
  Rng rng(3);
  std::vector<std::vector<double>> rows;
  std::vector<bool> labels;
  std::vector<size_t> train;
  for (int i = 0; i < 400; ++i) {
    bool positive = i % 4 == 0;
    rows.push_back({positive ? rng.UniformDouble(0.7, 1.0)
                             : rng.UniformDouble(0.0, 0.3),
                    rng.UniformDouble()});
    labels.push_back(positive);
    train.push_back(i);
  }
  SvmOptions options;
  LinearSvm model = TrainPegasos(rows, labels, train, options);
  size_t correct = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    bool predicted = model.Margin(rows[i]) > 0.0;
    if (predicted == labels[i]) ++correct;
  }
  EXPECT_GT(correct, 380u);
}

}  // namespace
}  // namespace gter
