# Empty compiler generated dependencies file for gter.
# This may be replaced when dependencies are built.
