file(REMOVE_RECURSE
  "libgter.a"
)
