
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gter/baselines/crowd/acd.cc" "src/CMakeFiles/gter.dir/gter/baselines/crowd/acd.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/crowd/acd.cc.o.d"
  "/root/repo/src/gter/baselines/crowd/crowder.cc" "src/CMakeFiles/gter.dir/gter/baselines/crowd/crowder.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/crowd/crowder.cc.o.d"
  "/root/repo/src/gter/baselines/crowd/gcer.cc" "src/CMakeFiles/gter.dir/gter/baselines/crowd/gcer.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/crowd/gcer.cc.o.d"
  "/root/repo/src/gter/baselines/crowd/oracle.cc" "src/CMakeFiles/gter.dir/gter/baselines/crowd/oracle.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/crowd/oracle.cc.o.d"
  "/root/repo/src/gter/baselines/crowd/power_plus.cc" "src/CMakeFiles/gter.dir/gter/baselines/crowd/power_plus.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/crowd/power_plus.cc.o.d"
  "/root/repo/src/gter/baselines/crowd/transm.cc" "src/CMakeFiles/gter.dir/gter/baselines/crowd/transm.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/crowd/transm.cc.o.d"
  "/root/repo/src/gter/baselines/edit_distance_resolver.cc" "src/CMakeFiles/gter.dir/gter/baselines/edit_distance_resolver.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/edit_distance_resolver.cc.o.d"
  "/root/repo/src/gter/baselines/hybrid.cc" "src/CMakeFiles/gter.dir/gter/baselines/hybrid.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/hybrid.cc.o.d"
  "/root/repo/src/gter/baselines/jaccard_resolver.cc" "src/CMakeFiles/gter.dir/gter/baselines/jaccard_resolver.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/jaccard_resolver.cc.o.d"
  "/root/repo/src/gter/baselines/ml/bootstrap_gmm.cc" "src/CMakeFiles/gter.dir/gter/baselines/ml/bootstrap_gmm.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/ml/bootstrap_gmm.cc.o.d"
  "/root/repo/src/gter/baselines/ml/features.cc" "src/CMakeFiles/gter.dir/gter/baselines/ml/features.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/ml/features.cc.o.d"
  "/root/repo/src/gter/baselines/ml/fellegi_sunter.cc" "src/CMakeFiles/gter.dir/gter/baselines/ml/fellegi_sunter.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/ml/fellegi_sunter.cc.o.d"
  "/root/repo/src/gter/baselines/ml/gmm.cc" "src/CMakeFiles/gter.dir/gter/baselines/ml/gmm.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/ml/gmm.cc.o.d"
  "/root/repo/src/gter/baselines/ml/linear_svm.cc" "src/CMakeFiles/gter.dir/gter/baselines/ml/linear_svm.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/ml/linear_svm.cc.o.d"
  "/root/repo/src/gter/baselines/simrank.cc" "src/CMakeFiles/gter.dir/gter/baselines/simrank.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/simrank.cc.o.d"
  "/root/repo/src/gter/baselines/tfidf_resolver.cc" "src/CMakeFiles/gter.dir/gter/baselines/tfidf_resolver.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/tfidf_resolver.cc.o.d"
  "/root/repo/src/gter/baselines/twidf_pagerank.cc" "src/CMakeFiles/gter.dir/gter/baselines/twidf_pagerank.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/baselines/twidf_pagerank.cc.o.d"
  "/root/repo/src/gter/common/flags.cc" "src/CMakeFiles/gter.dir/gter/common/flags.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/common/flags.cc.o.d"
  "/root/repo/src/gter/common/logging.cc" "src/CMakeFiles/gter.dir/gter/common/logging.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/common/logging.cc.o.d"
  "/root/repo/src/gter/common/random.cc" "src/CMakeFiles/gter.dir/gter/common/random.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/common/random.cc.o.d"
  "/root/repo/src/gter/common/status.cc" "src/CMakeFiles/gter.dir/gter/common/status.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/common/status.cc.o.d"
  "/root/repo/src/gter/common/thread_pool.cc" "src/CMakeFiles/gter.dir/gter/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/common/thread_pool.cc.o.d"
  "/root/repo/src/gter/core/cliquerank.cc" "src/CMakeFiles/gter.dir/gter/core/cliquerank.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/core/cliquerank.cc.o.d"
  "/root/repo/src/gter/core/correlation_clustering.cc" "src/CMakeFiles/gter.dir/gter/core/correlation_clustering.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/core/correlation_clustering.cc.o.d"
  "/root/repo/src/gter/core/fusion.cc" "src/CMakeFiles/gter.dir/gter/core/fusion.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/core/fusion.cc.o.d"
  "/root/repo/src/gter/core/iter.cc" "src/CMakeFiles/gter.dir/gter/core/iter.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/core/iter.cc.o.d"
  "/root/repo/src/gter/core/iter_matrix.cc" "src/CMakeFiles/gter.dir/gter/core/iter_matrix.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/core/iter_matrix.cc.o.d"
  "/root/repo/src/gter/core/model_io.cc" "src/CMakeFiles/gter.dir/gter/core/model_io.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/core/model_io.cc.o.d"
  "/root/repo/src/gter/core/resolver.cc" "src/CMakeFiles/gter.dir/gter/core/resolver.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/core/resolver.cc.o.d"
  "/root/repo/src/gter/core/rss.cc" "src/CMakeFiles/gter.dir/gter/core/rss.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/core/rss.cc.o.d"
  "/root/repo/src/gter/datagen/datagen.cc" "src/CMakeFiles/gter.dir/gter/datagen/datagen.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/datagen/datagen.cc.o.d"
  "/root/repo/src/gter/datagen/noise.cc" "src/CMakeFiles/gter.dir/gter/datagen/noise.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/datagen/noise.cc.o.d"
  "/root/repo/src/gter/datagen/paper_gen.cc" "src/CMakeFiles/gter.dir/gter/datagen/paper_gen.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/datagen/paper_gen.cc.o.d"
  "/root/repo/src/gter/datagen/product_gen.cc" "src/CMakeFiles/gter.dir/gter/datagen/product_gen.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/datagen/product_gen.cc.o.d"
  "/root/repo/src/gter/datagen/restaurant_gen.cc" "src/CMakeFiles/gter.dir/gter/datagen/restaurant_gen.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/datagen/restaurant_gen.cc.o.d"
  "/root/repo/src/gter/datagen/vocab_bank.cc" "src/CMakeFiles/gter.dir/gter/datagen/vocab_bank.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/datagen/vocab_bank.cc.o.d"
  "/root/repo/src/gter/er/blocking.cc" "src/CMakeFiles/gter.dir/gter/er/blocking.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/er/blocking.cc.o.d"
  "/root/repo/src/gter/er/csv.cc" "src/CMakeFiles/gter.dir/gter/er/csv.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/er/csv.cc.o.d"
  "/root/repo/src/gter/er/dataset.cc" "src/CMakeFiles/gter.dir/gter/er/dataset.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/er/dataset.cc.o.d"
  "/root/repo/src/gter/er/ground_truth.cc" "src/CMakeFiles/gter.dir/gter/er/ground_truth.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/er/ground_truth.cc.o.d"
  "/root/repo/src/gter/er/pair_space.cc" "src/CMakeFiles/gter.dir/gter/er/pair_space.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/er/pair_space.cc.o.d"
  "/root/repo/src/gter/er/preprocess.cc" "src/CMakeFiles/gter.dir/gter/er/preprocess.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/er/preprocess.cc.o.d"
  "/root/repo/src/gter/eval/cluster_metrics.cc" "src/CMakeFiles/gter.dir/gter/eval/cluster_metrics.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/eval/cluster_metrics.cc.o.d"
  "/root/repo/src/gter/eval/confusion.cc" "src/CMakeFiles/gter.dir/gter/eval/confusion.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/eval/confusion.cc.o.d"
  "/root/repo/src/gter/eval/pr_curve.cc" "src/CMakeFiles/gter.dir/gter/eval/pr_curve.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/eval/pr_curve.cc.o.d"
  "/root/repo/src/gter/eval/spearman.cc" "src/CMakeFiles/gter.dir/gter/eval/spearman.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/eval/spearman.cc.o.d"
  "/root/repo/src/gter/eval/term_score.cc" "src/CMakeFiles/gter.dir/gter/eval/term_score.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/eval/term_score.cc.o.d"
  "/root/repo/src/gter/eval/threshold_sweep.cc" "src/CMakeFiles/gter.dir/gter/eval/threshold_sweep.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/eval/threshold_sweep.cc.o.d"
  "/root/repo/src/gter/graph/bipartite_graph.cc" "src/CMakeFiles/gter.dir/gter/graph/bipartite_graph.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/graph/bipartite_graph.cc.o.d"
  "/root/repo/src/gter/graph/connected_components.cc" "src/CMakeFiles/gter.dir/gter/graph/connected_components.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/graph/connected_components.cc.o.d"
  "/root/repo/src/gter/graph/pagerank.cc" "src/CMakeFiles/gter.dir/gter/graph/pagerank.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/graph/pagerank.cc.o.d"
  "/root/repo/src/gter/graph/record_graph.cc" "src/CMakeFiles/gter.dir/gter/graph/record_graph.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/graph/record_graph.cc.o.d"
  "/root/repo/src/gter/graph/term_graph.cc" "src/CMakeFiles/gter.dir/gter/graph/term_graph.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/graph/term_graph.cc.o.d"
  "/root/repo/src/gter/graph/union_find.cc" "src/CMakeFiles/gter.dir/gter/graph/union_find.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/graph/union_find.cc.o.d"
  "/root/repo/src/gter/matrix/csr_matrix.cc" "src/CMakeFiles/gter.dir/gter/matrix/csr_matrix.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/matrix/csr_matrix.cc.o.d"
  "/root/repo/src/gter/matrix/dense_matrix.cc" "src/CMakeFiles/gter.dir/gter/matrix/dense_matrix.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/matrix/dense_matrix.cc.o.d"
  "/root/repo/src/gter/matrix/gemm.cc" "src/CMakeFiles/gter.dir/gter/matrix/gemm.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/matrix/gemm.cc.o.d"
  "/root/repo/src/gter/matrix/masked_multiply.cc" "src/CMakeFiles/gter.dir/gter/matrix/masked_multiply.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/matrix/masked_multiply.cc.o.d"
  "/root/repo/src/gter/text/normalizer.cc" "src/CMakeFiles/gter.dir/gter/text/normalizer.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/text/normalizer.cc.o.d"
  "/root/repo/src/gter/text/string_metrics.cc" "src/CMakeFiles/gter.dir/gter/text/string_metrics.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/text/string_metrics.cc.o.d"
  "/root/repo/src/gter/text/tfidf.cc" "src/CMakeFiles/gter.dir/gter/text/tfidf.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/text/tfidf.cc.o.d"
  "/root/repo/src/gter/text/tokenizer.cc" "src/CMakeFiles/gter.dir/gter/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/text/tokenizer.cc.o.d"
  "/root/repo/src/gter/text/vocabulary.cc" "src/CMakeFiles/gter.dir/gter/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/gter.dir/gter/text/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
