file(REMOVE_RECURSE
  "CMakeFiles/gter_cli.dir/gter_cli.cc.o"
  "CMakeFiles/gter_cli.dir/gter_cli.cc.o.d"
  "gter_cli"
  "gter_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gter_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
