# Empty dependencies file for gter_cli.
# This may be replaced when dependencies are built.
