file(REMOVE_RECURSE
  "../bench/bench_ablation_walk"
  "../bench/bench_ablation_walk.pdb"
  "CMakeFiles/bench_ablation_walk.dir/bench_ablation_walk.cc.o"
  "CMakeFiles/bench_ablation_walk.dir/bench_ablation_walk.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
