# Empty compiler generated dependencies file for bench_ablation_walk.
# This may be replaced when dependencies are built.
