file(REMOVE_RECURSE
  "../bench/bench_ablation_eta"
  "../bench/bench_ablation_eta.pdb"
  "CMakeFiles/bench_ablation_eta.dir/bench_ablation_eta.cc.o"
  "CMakeFiles/bench_ablation_eta.dir/bench_ablation_eta.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
