file(REMOVE_RECURSE
  "../bench/bench_string_metrics"
  "../bench/bench_string_metrics.pdb"
  "CMakeFiles/bench_string_metrics.dir/bench_string_metrics.cc.o"
  "CMakeFiles/bench_string_metrics.dir/bench_string_metrics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_string_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
