# Empty dependencies file for bench_string_metrics.
# This may be replaced when dependencies are built.
