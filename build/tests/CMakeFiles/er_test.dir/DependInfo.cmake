
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/er/blocking_test.cc" "tests/CMakeFiles/er_test.dir/er/blocking_test.cc.o" "gcc" "tests/CMakeFiles/er_test.dir/er/blocking_test.cc.o.d"
  "/root/repo/tests/er/csv_test.cc" "tests/CMakeFiles/er_test.dir/er/csv_test.cc.o" "gcc" "tests/CMakeFiles/er_test.dir/er/csv_test.cc.o.d"
  "/root/repo/tests/er/dataset_test.cc" "tests/CMakeFiles/er_test.dir/er/dataset_test.cc.o" "gcc" "tests/CMakeFiles/er_test.dir/er/dataset_test.cc.o.d"
  "/root/repo/tests/er/ground_truth_test.cc" "tests/CMakeFiles/er_test.dir/er/ground_truth_test.cc.o" "gcc" "tests/CMakeFiles/er_test.dir/er/ground_truth_test.cc.o.d"
  "/root/repo/tests/er/pair_space_test.cc" "tests/CMakeFiles/er_test.dir/er/pair_space_test.cc.o" "gcc" "tests/CMakeFiles/er_test.dir/er/pair_space_test.cc.o.d"
  "/root/repo/tests/er/preprocess_test.cc" "tests/CMakeFiles/er_test.dir/er/preprocess_test.cc.o" "gcc" "tests/CMakeFiles/er_test.dir/er/preprocess_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gter.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
