file(REMOVE_RECURSE
  "CMakeFiles/er_test.dir/er/blocking_test.cc.o"
  "CMakeFiles/er_test.dir/er/blocking_test.cc.o.d"
  "CMakeFiles/er_test.dir/er/csv_test.cc.o"
  "CMakeFiles/er_test.dir/er/csv_test.cc.o.d"
  "CMakeFiles/er_test.dir/er/dataset_test.cc.o"
  "CMakeFiles/er_test.dir/er/dataset_test.cc.o.d"
  "CMakeFiles/er_test.dir/er/ground_truth_test.cc.o"
  "CMakeFiles/er_test.dir/er/ground_truth_test.cc.o.d"
  "CMakeFiles/er_test.dir/er/pair_space_test.cc.o"
  "CMakeFiles/er_test.dir/er/pair_space_test.cc.o.d"
  "CMakeFiles/er_test.dir/er/preprocess_test.cc.o"
  "CMakeFiles/er_test.dir/er/preprocess_test.cc.o.d"
  "er_test"
  "er_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
