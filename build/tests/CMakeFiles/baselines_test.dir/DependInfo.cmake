
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/crowd_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/crowd_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/crowd_test.cc.o.d"
  "/root/repo/tests/baselines/hybrid_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/hybrid_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/hybrid_test.cc.o.d"
  "/root/repo/tests/baselines/ml_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/ml_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/ml_test.cc.o.d"
  "/root/repo/tests/baselines/simrank_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/simrank_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/simrank_test.cc.o.d"
  "/root/repo/tests/baselines/string_baselines_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/string_baselines_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/string_baselines_test.cc.o.d"
  "/root/repo/tests/baselines/twidf_pagerank_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/twidf_pagerank_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/twidf_pagerank_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gter.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
