file(REMOVE_RECURSE
  "CMakeFiles/baselines_test.dir/baselines/crowd_test.cc.o"
  "CMakeFiles/baselines_test.dir/baselines/crowd_test.cc.o.d"
  "CMakeFiles/baselines_test.dir/baselines/hybrid_test.cc.o"
  "CMakeFiles/baselines_test.dir/baselines/hybrid_test.cc.o.d"
  "CMakeFiles/baselines_test.dir/baselines/ml_test.cc.o"
  "CMakeFiles/baselines_test.dir/baselines/ml_test.cc.o.d"
  "CMakeFiles/baselines_test.dir/baselines/simrank_test.cc.o"
  "CMakeFiles/baselines_test.dir/baselines/simrank_test.cc.o.d"
  "CMakeFiles/baselines_test.dir/baselines/string_baselines_test.cc.o"
  "CMakeFiles/baselines_test.dir/baselines/string_baselines_test.cc.o.d"
  "CMakeFiles/baselines_test.dir/baselines/twidf_pagerank_test.cc.o"
  "CMakeFiles/baselines_test.dir/baselines/twidf_pagerank_test.cc.o.d"
  "baselines_test"
  "baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
