
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cliquerank_test.cc" "tests/CMakeFiles/core_test.dir/core/cliquerank_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cliquerank_test.cc.o.d"
  "/root/repo/tests/core/correlation_clustering_test.cc" "tests/CMakeFiles/core_test.dir/core/correlation_clustering_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/correlation_clustering_test.cc.o.d"
  "/root/repo/tests/core/fusion_test.cc" "tests/CMakeFiles/core_test.dir/core/fusion_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/fusion_test.cc.o.d"
  "/root/repo/tests/core/iter_matrix_test.cc" "tests/CMakeFiles/core_test.dir/core/iter_matrix_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/iter_matrix_test.cc.o.d"
  "/root/repo/tests/core/iter_test.cc" "tests/CMakeFiles/core_test.dir/core/iter_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/iter_test.cc.o.d"
  "/root/repo/tests/core/model_io_test.cc" "tests/CMakeFiles/core_test.dir/core/model_io_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/model_io_test.cc.o.d"
  "/root/repo/tests/core/random_graph_properties_test.cc" "tests/CMakeFiles/core_test.dir/core/random_graph_properties_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/random_graph_properties_test.cc.o.d"
  "/root/repo/tests/core/rss_test.cc" "tests/CMakeFiles/core_test.dir/core/rss_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rss_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gter.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
