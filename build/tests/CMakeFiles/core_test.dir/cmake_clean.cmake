file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/cliquerank_test.cc.o"
  "CMakeFiles/core_test.dir/core/cliquerank_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/correlation_clustering_test.cc.o"
  "CMakeFiles/core_test.dir/core/correlation_clustering_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/fusion_test.cc.o"
  "CMakeFiles/core_test.dir/core/fusion_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/iter_matrix_test.cc.o"
  "CMakeFiles/core_test.dir/core/iter_matrix_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/iter_test.cc.o"
  "CMakeFiles/core_test.dir/core/iter_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/model_io_test.cc.o"
  "CMakeFiles/core_test.dir/core/model_io_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/random_graph_properties_test.cc.o"
  "CMakeFiles/core_test.dir/core/random_graph_properties_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/rss_test.cc.o"
  "CMakeFiles/core_test.dir/core/rss_test.cc.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
