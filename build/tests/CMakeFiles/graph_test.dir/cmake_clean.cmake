file(REMOVE_RECURSE
  "CMakeFiles/graph_test.dir/graph/bipartite_graph_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/bipartite_graph_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/connected_components_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/connected_components_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/pagerank_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/pagerank_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/record_graph_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/record_graph_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/term_graph_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/term_graph_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/union_find_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/union_find_test.cc.o.d"
  "graph_test"
  "graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
