file(REMOVE_RECURSE
  "CMakeFiles/eval_test.dir/eval/cluster_metrics_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/cluster_metrics_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/confusion_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/confusion_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/pr_curve_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/pr_curve_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/spearman_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/spearman_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/term_score_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/term_score_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/threshold_sweep_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/threshold_sweep_test.cc.o.d"
  "eval_test"
  "eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
