
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval/cluster_metrics_test.cc" "tests/CMakeFiles/eval_test.dir/eval/cluster_metrics_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/cluster_metrics_test.cc.o.d"
  "/root/repo/tests/eval/confusion_test.cc" "tests/CMakeFiles/eval_test.dir/eval/confusion_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/confusion_test.cc.o.d"
  "/root/repo/tests/eval/pr_curve_test.cc" "tests/CMakeFiles/eval_test.dir/eval/pr_curve_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/pr_curve_test.cc.o.d"
  "/root/repo/tests/eval/spearman_test.cc" "tests/CMakeFiles/eval_test.dir/eval/spearman_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/spearman_test.cc.o.d"
  "/root/repo/tests/eval/term_score_test.cc" "tests/CMakeFiles/eval_test.dir/eval/term_score_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/term_score_test.cc.o.d"
  "/root/repo/tests/eval/threshold_sweep_test.cc" "tests/CMakeFiles/eval_test.dir/eval/threshold_sweep_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/threshold_sweep_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gter.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
