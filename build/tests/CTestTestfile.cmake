# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;gter_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(text_test "/root/repo/build/tests/text_test")
set_tests_properties(text_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;gter_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(matrix_test "/root/repo/build/tests/matrix_test")
set_tests_properties(matrix_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;25;gter_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(er_test "/root/repo/build/tests/er_test")
set_tests_properties(er_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;32;gter_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;41;gter_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datagen_test "/root/repo/build/tests/datagen_test")
set_tests_properties(datagen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;50;gter_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/tests/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;56;gter_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;65;gter_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;74;gter_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;85;gter_add_test;/root/repo/tests/CMakeLists.txt;0;")
