file(REMOVE_RECURSE
  "CMakeFiles/citation_clustering.dir/citation_clustering.cpp.o"
  "CMakeFiles/citation_clustering.dir/citation_clustering.cpp.o.d"
  "citation_clustering"
  "citation_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
