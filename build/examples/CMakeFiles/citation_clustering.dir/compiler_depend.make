# Empty compiler generated dependencies file for citation_clustering.
# This may be replaced when dependencies are built.
