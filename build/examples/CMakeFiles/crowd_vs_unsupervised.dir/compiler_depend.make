# Empty compiler generated dependencies file for crowd_vs_unsupervised.
# This may be replaced when dependencies are built.
