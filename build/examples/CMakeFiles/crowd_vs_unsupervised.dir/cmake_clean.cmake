file(REMOVE_RECURSE
  "CMakeFiles/crowd_vs_unsupervised.dir/crowd_vs_unsupervised.cpp.o"
  "CMakeFiles/crowd_vs_unsupervised.dir/crowd_vs_unsupervised.cpp.o.d"
  "crowd_vs_unsupervised"
  "crowd_vs_unsupervised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_vs_unsupervised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
