# Empty dependencies file for product_catalog_dedup.
# This may be replaced when dependencies are built.
