file(REMOVE_RECURSE
  "CMakeFiles/product_catalog_dedup.dir/product_catalog_dedup.cpp.o"
  "CMakeFiles/product_catalog_dedup.dir/product_catalog_dedup.cpp.o.d"
  "product_catalog_dedup"
  "product_catalog_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_catalog_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
