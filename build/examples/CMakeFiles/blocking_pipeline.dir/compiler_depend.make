# Empty compiler generated dependencies file for blocking_pipeline.
# This may be replaced when dependencies are built.
