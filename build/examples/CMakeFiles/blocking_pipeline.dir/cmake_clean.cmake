file(REMOVE_RECURSE
  "CMakeFiles/blocking_pipeline.dir/blocking_pipeline.cpp.o"
  "CMakeFiles/blocking_pipeline.dir/blocking_pipeline.cpp.o.d"
  "blocking_pipeline"
  "blocking_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
