// Quickstart: resolve a small restaurant catalog end to end with the
// unsupervised fusion framework.
//
//   build/examples/quickstart
//
// Walks the canonical pipeline: build a Dataset → remove frequent terms →
// run FusionPipeline (ITER ⇄ CliqueRank) → read matches and clusters.

#include <cstdio>

#include "gter/gter.h"

int main() {
  using namespace gter;

  // 1. A dataset is a collection of textual records. Here: a toy catalog
  //    where records 0/1 and 2/3 describe the same restaurants.
  Dataset dataset("toy-restaurants");
  dataset.AddRecord(0, "Golden Dragon Palace 435 Cienega Blvd 3102461501");
  dataset.AddRecord(0, "golden dragon palace, 435 cienega boulevard, 310-246-1501");
  dataset.AddRecord(0, "Blue Ocean Grill 97 Ocean Ave 3105550123");
  dataset.AddRecord(0, "blue ocean grill - 97 ocean avenue (310) 555-0123");
  dataset.AddRecord(0, "Luna Bistro 12 Main St 2125559876");
  dataset.AddRecord(0, "Casa Verona 88 Hill Rd 4155554321");

  // 2. Preprocessing: drop very frequent terms (domain stop words). The
  //    default ratio targets benchmark-sized corpora; on a toy catalog of
  //    six records we keep everything below 90% document frequency.
  PreprocessOptions preprocess;
  preprocess.max_df_ratio = 0.9;
  PreprocessStats stats = RemoveFrequentTerms(&dataset, preprocess);
  std::printf("preprocessing: kept %zu terms, removed %zu\n",
              stats.terms_kept, stats.terms_removed);

  // 3. The fusion framework with the paper's universal settings
  //    (alpha=20, S=20, eta=0.98, 5 reinforcement rounds).
  FusionConfig config;
  FusionPipeline pipeline(dataset, config);
  FusionResult result = pipeline.Run().value();

  // 4. Matching decisions come straight from the matching probability —
  //    no threshold tuning.
  std::printf("\ncandidate pairs and matching probabilities:\n");
  for (PairId p = 0; p < pipeline.pairs().size(); ++p) {
    const RecordPair& rp = pipeline.pairs().pair(p);
    std::printf("  (%u, %u)  p=%.3f  %s\n", rp.a, rp.b,
                result.pair_probability[p],
                result.matches[p] ? "MATCH" : "no");
  }

  // 5. Transitive closure gives entity clusters.
  ResolutionResult resolution =
      ResolveFromMatches(dataset, pipeline.pairs(), result.matches);
  std::printf("\nclusters:\n");
  std::vector<std::vector<uint32_t>> clusters(dataset.size());
  for (RecordId r = 0; r < dataset.size(); ++r) {
    clusters[resolution.cluster_of[r]].push_back(r);
  }
  for (const auto& members : clusters) {
    if (members.empty()) continue;
    std::printf("  {");
    for (size_t i = 0; i < members.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", members[i]);
    }
    std::printf("}\n");
  }

  // 6. The learned term weights explain the decisions: discriminative
  //    terms (phone numbers) rank far above generic words.
  std::printf("\ntop terms by learned discrimination power:\n");
  std::vector<std::pair<double, TermId>> ranked;
  for (TermId t = 0; t < dataset.vocabulary().size(); ++t) {
    ranked.emplace_back(result.term_weights[t], t);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    std::printf("  x=%.3f  %s\n", ranked[i].first,
                dataset.vocabulary().TermOf(ranked[i].second).c_str());
  }
  return 0;
}
