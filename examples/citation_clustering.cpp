// Bibliography (Cora-style) citation clustering — the paper's third
// benchmark domain, featuring large entity cliques (a highly cited paper
// appears as hundreds of differently-formatted citation strings).
//
//   build/examples/citation_clustering [--scale 0.25]
//
// Resolves the citations into clusters, evaluates pairwise clustering
// quality, and shows the largest recovered cluster next to its truth.

#include <algorithm>
#include <cstdio>

#include "gter/gter.h"

int main(int argc, char** argv) {
  using namespace gter;
  FlagSet flags;
  flags.AddDouble("scale", 0.25, "dataset scale (1.0 = 1865 citations)");
  flags.AddInt("seed", 11, "generator seed");
  GTER_CHECK_OK(flags.Parse(argc, argv));

  auto generated = GenerateBenchmark(BenchmarkKind::kPaper,
                                     flags.GetDouble("scale"),
                                     static_cast<uint64_t>(flags.GetInt("seed")));
  Dataset& citations = generated.dataset;
  RemoveFrequentTerms(&citations);

  auto hist = generated.truth.ClusterSizeHistogram();
  size_t largest = hist.size() - 1;
  std::printf("%zu citations, %zu true entities, largest cluster %zu\n",
              citations.size(), generated.truth.num_entities(), largest);

  FusionConfig config;
  config.rounds = 3;
  FusionPipeline pipeline(citations, config);
  FusionResult result = pipeline.Run().value();

  // The paper's metric: per-pair decision quality.
  auto labels = LabelPairs(pipeline.pairs(), generated.truth);
  Confusion pairwise = EvaluatePairPredictions(
      pipeline.pairs(), result.matches, labels,
      TotalPositives(citations, generated.truth));
  std::printf("pair decisions: P %.3f / R %.3f / F1 %.3f\n",
              pairwise.Precision(), pairwise.Recall(), pairwise.F1());

  // Transitive closure turns decisions into clusters. Note the
  // amplification: every false link merges two whole clusters, so closure
  // metrics are always harsher than pair metrics on clique-heavy data.
  ResolutionResult resolution =
      ResolveFromMatches(citations, pipeline.pairs(), result.matches);
  ClusterEvaluation eval =
      EvaluateClustering(resolution.cluster_of, generated.truth);
  std::printf(
      "after closure:  pairwise P %.3f / R %.3f / F1 %.3f, ARI %.3f, "
      "%zu predicted clusters\n",
      eval.pairwise_precision, eval.pairwise_recall, eval.pairwise_f1,
      eval.adjusted_rand_index, eval.num_predicted_clusters);

  // Correlation clustering outvotes isolated false links instead of
  // propagating them — the recommended way to turn probabilities into
  // clusters on clique-heavy data.
  CorrelationClusteringResult corr =
      CorrelationCluster(citations.size(), pipeline.pairs(),
                         result.pair_probability)
          .value();
  ClusterEvaluation corr_eval =
      EvaluateClustering(corr.cluster_of, generated.truth);
  std::printf(
      "corr. cluster:  pairwise P %.3f / R %.3f / F1 %.3f, ARI %.3f, "
      "%zu predicted clusters\n",
      corr_eval.pairwise_precision, corr_eval.pairwise_recall,
      corr_eval.pairwise_f1, corr_eval.adjusted_rand_index,
      corr_eval.num_predicted_clusters);

  // Show a slice of the largest predicted cluster.
  std::vector<std::vector<RecordId>> predicted(citations.size());
  for (RecordId r = 0; r < citations.size(); ++r) {
    predicted[resolution.cluster_of[r]].push_back(r);
  }
  auto biggest = std::max_element(
      predicted.begin(), predicted.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  std::printf("\nlargest predicted cluster (%zu citations), first 5:\n",
              biggest->size());
  for (size_t i = 0; i < biggest->size() && i < 5; ++i) {
    std::printf("  %s\n", citations.record((*biggest)[i]).raw_text.c_str());
  }
  size_t same_truth = 0;
  for (RecordId r : *biggest) {
    if (generated.truth.entity_of(r) ==
        generated.truth.entity_of((*biggest)[0])) {
      ++same_truth;
    }
  }
  std::printf("  → %zu/%zu of them belong to the same true entity\n",
              same_truth, biggest->size());
  return 0;
}
