// Two-source product catalog deduplication — the Abt-Buy scenario from the
// paper's introduction: match noisy product listings across two shops,
// where alphanumeric model codes are the discriminative terms.
//
//   build/examples/product_catalog_dedup [--scale 0.3] [--out matches.csv]
//
// Generates an Abt-Buy-like catalog, resolves it with the fusion
// framework, reports precision/recall against the generator's ground
// truth, prints sample matches, and exports the matched pairs as CSV.

#include <cstdio>

#include "gter/gter.h"

int main(int argc, char** argv) {
  using namespace gter;
  FlagSet flags;
  flags.AddDouble("scale", 0.3, "catalog scale (1.0 = 1081+1092 records)");
  flags.AddInt("seed", 7, "generator seed");
  flags.AddString("out", "/tmp/gter_product_matches.csv",
                  "CSV path for matched pairs");
  GTER_CHECK_OK(flags.Parse(argc, argv));

  auto generated = GenerateBenchmark(BenchmarkKind::kProduct,
                                     flags.GetDouble("scale"),
                                     static_cast<uint64_t>(flags.GetInt("seed")));
  Dataset& catalog = generated.dataset;
  RemoveFrequentTerms(&catalog);
  std::printf("catalog: %zu records from 2 sources, vocabulary %zu terms\n",
              catalog.size(), catalog.vocabulary().size());

  FusionConfig config;
  config.rounds = 3;
  FusionPipeline pipeline(catalog, config);
  FusionResult result = pipeline.Run().value();

  auto labels = LabelPairs(pipeline.pairs(), generated.truth);
  Confusion confusion = EvaluatePairPredictions(
      pipeline.pairs(), result.matches, labels,
      TotalPositives(catalog, generated.truth));
  std::printf(
      "resolution: precision %.3f, recall %.3f, F1 %.3f "
      "(%llu matched pairs)\n",
      confusion.Precision(), confusion.Recall(), confusion.F1(),
      static_cast<unsigned long long>(confusion.true_positives +
                                      confusion.false_positives));

  std::printf("\nsample cross-shop matches:\n");
  size_t shown = 0;
  for (PairId p = 0; p < pipeline.pairs().size() && shown < 5; ++p) {
    if (!result.matches[p]) continue;
    const RecordPair& rp = pipeline.pairs().pair(p);
    std::printf("  [shop%u] %s\n  [shop%u] %s\n  --\n",
                catalog.record(rp.a).source,
                catalog.record(rp.a).raw_text.c_str(),
                catalog.record(rp.b).source,
                catalog.record(rp.b).raw_text.c_str());
    ++shown;
  }

  // Export matched pairs.
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"record_a", "record_b", "probability", "text_a", "text_b"});
  for (PairId p = 0; p < pipeline.pairs().size(); ++p) {
    if (!result.matches[p]) continue;
    const RecordPair& rp = pipeline.pairs().pair(p);
    rows.push_back({std::to_string(rp.a), std::to_string(rp.b),
                    std::to_string(result.pair_probability[p]),
                    catalog.record(rp.a).raw_text,
                    catalog.record(rp.b).raw_text});
  }
  Status status = WriteCsvFile(flags.GetString("out"), rows);
  if (!status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\nexported %zu matched pairs to %s\n", rows.size() - 1,
              flags.GetString("out").c_str());
  return 0;
}
