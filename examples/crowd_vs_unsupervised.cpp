// Cost/quality comparison: crowd-assisted strategies (CrowdER, TransM,
// GCER, ACD, Power+) against the unsupervised fusion framework — the
// paper's central argument that comparable accuracy is reachable with zero
// crowd budget.
//
//   build/examples/crowd_vs_unsupervised [--scale 0.3] [--error 0.05]
//
// The crowd is simulated by an oracle that answers from ground truth with
// a configurable error rate (DESIGN.md §3).

#include <cstdio>

#include "gter/gter.h"

int main(int argc, char** argv) {
  using namespace gter;
  FlagSet flags;
  flags.AddDouble("scale", 0.3, "dataset scale");
  flags.AddDouble("error", 0.05, "simulated crowd error rate");
  flags.AddInt("seed", 5, "generator seed");
  GTER_CHECK_OK(flags.Parse(argc, argv));
  double scale = flags.GetDouble("scale");
  double error = flags.GetDouble("error");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  auto generated = GenerateBenchmark(BenchmarkKind::kRestaurant, scale, seed);
  Dataset& dataset = generated.dataset;
  RemoveFrequentTerms(&dataset);
  PairSpace pairs = PairSpace::Build(dataset);
  auto labels = LabelPairs(pairs, generated.truth);
  uint64_t positives = TotalPositives(dataset, generated.truth);
  std::vector<double> machine = JaccardScorer().Score(dataset, pairs);

  auto f1_of = [&](const std::vector<bool>& matches) {
    return EvaluatePairPredictions(pairs, matches, labels, positives).F1();
  };

  std::printf("%zu records, %zu candidate pairs, crowd error rate %.2f\n\n",
              dataset.size(), pairs.size(), error);
  std::printf("%-18s %8s %12s\n", "Method", "F1", "questions");
  std::printf("------------------------------------------\n");

  auto report = [&](const char* name, const CrowdRunResult& result) {
    std::printf("%-18s %8.3f %12zu\n", name, f1_of(result.matches),
                result.questions);
  };
  {
    CrowdOracle oracle(generated.truth, error, seed);
    report("CrowdER", RunCrowdEr(pairs, machine, &oracle, {}));
  }
  {
    CrowdOracle oracle(generated.truth, error, seed);
    report("TransM", RunTransM(pairs, machine, &oracle, {}));
  }
  {
    CrowdOracle oracle(generated.truth, error, seed);
    GcerOptions options;
    options.budget = pairs.size() / 4 + 50;
    report("GCER", RunGcer(pairs, machine, &oracle, options));
  }
  {
    CrowdOracle oracle(generated.truth, error, seed);
    report("ACD", RunAcd(pairs, machine, &oracle, {}));
  }
  {
    CrowdOracle oracle(generated.truth, error, seed);
    report("Power+", RunPowerPlus(pairs, machine, &oracle, {}));
  }
  {
    FusionConfig config;
    FusionPipeline pipeline(dataset, config);
    FusionResult result = pipeline.Run().value();
    std::printf("%-18s %8.3f %12s\n", "ITER+CliqueRank",
                f1_of(result.matches), "0");
  }
  std::printf(
      "\nThe unsupervised framework spends no crowd budget; the crowd rows "
      "pay\nper question and degrade as worker error grows (try "
      "--error 0.2).\n");
  return 0;
}
