// Scalable candidate generation: compare the paper's share-one-term
// blocking (PairSpace) with MinHash-LSH banding, then resolve with the
// fusion framework. At benchmark scale both work; LSH is what survives
// when the corpus grows to millions of records.
//
//   build/examples/blocking_pipeline [--scale 0.3]

#include <cstdio>

#include "gter/gter.h"

int main(int argc, char** argv) {
  using namespace gter;
  FlagSet flags;
  flags.AddDouble("scale", 0.3, "dataset scale");
  flags.AddInt("seed", 13, "generator seed");
  GTER_CHECK_OK(flags.Parse(argc, argv));

  auto generated = GenerateBenchmark(BenchmarkKind::kRestaurant,
                                     flags.GetDouble("scale"),
                                     static_cast<uint64_t>(flags.GetInt("seed")));
  Dataset& dataset = generated.dataset;
  RemoveFrequentTerms(&dataset);

  // Baseline blocking: every pair sharing one surviving term (§V-B).
  PairSpace share_term = PairSpace::Build(dataset);
  std::vector<RecordPair> share_term_pairs = share_term.pairs();
  std::printf("share-one-term blocking: %6zu pairs, recall %.3f\n",
              share_term_pairs.size(),
              BlockingRecall(dataset, generated.truth, share_term_pairs));

  // MinHash-LSH banding at a few operating points.
  for (auto [bands, rows] : {std::pair<size_t, size_t>{8, 4},
                             std::pair<size_t, size_t>{16, 3},
                             std::pair<size_t, size_t>{32, 2}}) {
    LshBlockingOptions options;
    options.num_bands = bands;
    options.rows_per_band = rows;
    BlockingResult lsh = LshBlocking(dataset, options).value();
    std::printf("LSH %2zu bands x %zu rows:  %6zu pairs, recall %.3f\n",
                bands, rows, lsh.pairs.size(),
                BlockingRecall(dataset, generated.truth, lsh.pairs));
  }

  // Resolve on the standard pair space and report quality.
  FusionConfig config;
  config.rounds = 3;
  FusionPipeline pipeline(dataset, config);
  FusionResult result = pipeline.Run().value();
  auto labels = LabelPairs(pipeline.pairs(), generated.truth);
  Confusion c = EvaluatePairPredictions(
      pipeline.pairs(), result.matches, labels,
      TotalPositives(dataset, generated.truth));
  std::printf("\nfusion on share-one-term candidates: P %.3f / R %.3f / "
              "F1 %.3f\n",
              c.Precision(), c.Recall(), c.F1());

  // MinHash also gives a cheap similarity estimate per candidate.
  MinHasher hasher(128);
  const Record& a = dataset.record(0);
  for (RecordId r = 1; r < dataset.size() && r < 4; ++r) {
    const Record& b = dataset.record(r);
    double est = MinHasher::EstimateJaccard(hasher.Signature(a.terms),
                                            hasher.Signature(b.terms));
    double exact = JaccardSimilarity(a.terms, b.terms);
    std::printf("record 0 vs %u: Jaccard %.3f, MinHash estimate %.3f\n", r,
                exact, est);
  }
  return 0;
}
